open Qsens_linalg
module Pool = Qsens_parallel.Pool
module Obs = Qsens_obs.Obs

(* Same name as in Framework / Worst_case: registration is idempotent,
   all sites feed one counter. *)
let m_degenerate_ratios =
  Obs.counter
    ~help:"degenerate (NaN) plan ratios skipped in worst-case argmax"
    "wc.degenerate_ratios"

let m_plans_pruned =
  Obs.counter ~help:"plans removed by dominance pruning before table build"
    "sweep.plans_pruned"

let m_evals =
  Obs.counter ~help:"separable per-delta sweep evaluations" "sweep.evals"

let max_dim = 12
let supported ~dim = dim >= 1 && dim <= max_dim

type t = {
  center : Vec.t;
  dim : int;
  nv : int;
  mask : int;
  kept : int array;
  sums : float array;
  num_sums : float array;
  degenerate : bool array;
  initial_zero : bool;
}

let dim t = t.dim
let num_patterns t = t.nv
let kept t = Array.copy t.kept
let center t = Vec.copy t.center

(* Subset sums by the highest-bit recurrence: the entry for a pattern
   whose top bit is [i] extends the entry with that bit cleared by
   [w.(i)], so every subset accumulates its terms in ascending index
   order — the same association as an ascending fold, which keeps the
   full-pattern entry bit-identical to the [s_total] prepass sum. *)
let subset_sums w m out pos =
  out.(pos) <- 0.;
  for i = 0 to m - 1 do
    let bit = 1 lsl i in
    for k = bit to (2 * bit) - 1 do
      out.(pos + k) <- out.(pos + k - bit) +. w.(i)
    done
  done

let ascending_sum w =
  let acc = ref 0. in
  for i = 0 to Array.length w - 1 do
    acc := !acc +. w.(i)
  done;
  !acc

let vertex_value ~delta ~inv a b = Float.fma delta a (b *. inv)

let build ?pool ?(prune = true) ~plans ~initial ~center () =
  let np = Array.length plans in
  if np = 0 then invalid_arg "Sweep.build: no plans";
  let m = Vec.dim center in
  if not (supported ~dim:m) then
    invalid_arg
      (Printf.sprintf "Sweep.build: dimension %d outside 1..%d" m max_dim);
  if Vec.dim initial <> m then invalid_arg "Sweep.build: dimension mismatch";
  Array.iter
    (fun p -> if Vec.dim p <> m then invalid_arg "Sweep.build: dimension mismatch")
    plans;
  Array.iter
    (fun x -> if x <= 0. then invalid_arg "Sweep.build: center must be > 0")
    center;
  let check_nonneg v =
    Array.iter
      (fun x -> if x < 0. then invalid_arg "Sweep.build: negative component")
      v
  in
  check_nonneg initial;
  Array.iter check_nonneg plans;
  Obs.with_span "sweep.build" @@ fun () ->
  let nv = 1 lsl m in
  let mask = nv - 1 in
  let weights = Array.map (fun p -> Vec.map2 ( *. ) p center) plans in
  let totals = Array.map ascending_sum weights in
  let degenerate = Array.map (fun s -> Float.equal s 0.) totals in
  let num_weights = Vec.map2 ( *. ) initial center in
  let initial_zero = Float.equal (ascending_sum num_weights) 0. in
  (* Dominance pruning (Section 4.4): a plan with a componentwise-cheaper
     rival can never win the argmax — monotone rounding keeps its computed
     denominator at least the rival's at every vertex, so its ratio never
     strictly exceeds the rival's.  Only lower-index dominators prune
     (preserving lowest-index tie-breaking), and only dominators whose
     computed total is positive (an all-underflow dominator could turn a
     finite ratio into a skipped NaN). *)
  let kept =
    if not prune then Array.init np Fun.id
    else begin
      let keep = Array.make np true in
      for j = 1 to np - 1 do
        let i = ref 0 in
        while keep.(j) && !i < j do
          if totals.(!i) > 0. && Vec.dominates plans.(!i) plans.(j) then
            keep.(j) <- false;
          incr i
        done
      done;
      let n = Array.fold_left (fun acc k -> if k then acc + 1 else acc) 0 keep in
      let kept = Array.make n 0 in
      let next = ref 0 in
      Array.iteri
        (fun j k ->
          if k then begin
            kept.(!next) <- j;
            incr next
          end)
        keep;
      kept
    end
  in
  Obs.add m_plans_pruned (np - Array.length kept);
  let nkept = Array.length kept in
  let sums = Array.make (nkept * nv) 0. in
  let fill lo hi =
    for kp = lo to hi - 1 do
      subset_sums weights.(kept.(kp)) m sums (kp * nv)
    done
  in
  (match pool with
  | Some p when Pool.domains p > 1 && nkept > 1 ->
      Pool.parallel_for_chunked p ~n:nkept fill
  | _ -> fill 0 nkept);
  let num_sums = Array.make nv 0. in
  subset_sums num_weights m num_sums 0;
  {
    center = Vec.copy center;
    dim = m;
    nv;
    mask;
    kept;
    sums;
    num_sums;
    degenerate;
    initial_zero;
  }

let eval t ~delta =
  if delta < 1. then invalid_arg "Sweep.eval: delta must be >= 1";
  Obs.add m_evals 1;
  let inv = 1. /. delta in
  let nv = t.nv and mask = t.mask in
  let sums = t.sums and num_sums = t.num_sums in
  let best = ref neg_infinity and best_pat = ref (-1) and degen = ref 0 in
  for kp = 0 to Array.length t.kept - 1 do
    let p = t.kept.(kp) in
    if t.degenerate.(p) && t.initial_zero then incr degen
    else begin
      let off = kp * nv in
      for k = 0 to nv - 1 do
        let den = vertex_value ~delta ~inv sums.(off + k) sums.(off + (mask lxor k)) in
        let num = vertex_value ~delta ~inv num_sums.(k) num_sums.(mask lxor k) in
        let r = num /. den in
        (* Strict improvement: lowest (plan, pattern) wins ties and NaN
           ratios fall through, exactly like the per-plan argmax. *)
        if r > !best then begin
          best := r;
          best_pat := k
        end
      done
    end
  done;
  Obs.add m_degenerate_ratios !degen;
  if !best_pat >= 0 then (!best, !best_pat)
  else ((if !degen > 0 then nan else !best), -1)

let check_pattern t pattern =
  if pattern < 0 || pattern >= t.nv then
    invalid_arg
      (Printf.sprintf "Sweep: pattern %d outside 0..%d" pattern (t.nv - 1))

let kept_slot t plan =
  if plan < 0 || plan >= Array.length t.degenerate then
    invalid_arg (Printf.sprintf "Sweep: plan %d out of range" plan);
  let rec go kp =
    if kp >= Array.length t.kept then
      invalid_arg (Printf.sprintf "Sweep: plan %d was pruned" plan)
    else if t.kept.(kp) = plan then kp
    else go (kp + 1)
  in
  go 0

let plan_a t ~plan ~pattern =
  check_pattern t pattern;
  t.sums.((kept_slot t plan * t.nv) + pattern)

let plan_b t ~plan ~pattern =
  check_pattern t pattern;
  t.sums.((kept_slot t plan * t.nv) + (t.mask lxor pattern))

let initial_a t ~pattern =
  check_pattern t pattern;
  t.num_sums.(pattern)

let initial_b t ~pattern =
  check_pattern t pattern;
  t.num_sums.(t.mask lxor pattern)
