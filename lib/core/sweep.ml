open Qsens_linalg
module Pool = Qsens_parallel.Pool
module Obs = Qsens_obs.Obs
module Vertex_enum = Qsens_geom.Vertex_enum
module Budget = Qsens_budget.Budget

(* Same name as in Framework / Worst_case: registration is idempotent,
   all sites feed one counter. *)
let m_degenerate_ratios =
  Obs.counter
    ~help:"degenerate (NaN) plan ratios skipped in worst-case argmax"
    "wc.degenerate_ratios"

let m_plans_pruned =
  Obs.counter ~help:"plans removed by dominance pruning before table build"
    "sweep.plans_pruned"

let m_evals =
  Obs.counter ~help:"separable per-delta sweep evaluations" "sweep.evals"

let m_bnb_evals =
  Obs.counter ~help:"branch-and-bound worst-case evaluations" "bnb.evals"

let m_bnb_nodes =
  Obs.counter ~help:"branch-and-bound search nodes visited" "bnb.nodes"

let m_bnb_leaves =
  Obs.counter ~help:"branch-and-bound leaf ratios evaluated" "bnb.leaves"

let max_dim = Limits.exhaustive_max_dim
let supported ~dim = dim >= 1 && dim <= max_dim

(* Shared by the exhaustive and branch-and-bound builders: everything but
   the dimension gate, which differs between them. *)
let validate_inputs ~who ~plans ~initial ~center =
  let m = Vec.dim center in
  if Vec.dim initial <> m then invalid_arg (who ^ ": dimension mismatch");
  Array.iter
    (fun p -> if Vec.dim p <> m then invalid_arg (who ^ ": dimension mismatch"))
    plans;
  Array.iter
    (fun x -> if x <= 0. then invalid_arg (who ^ ": center must be > 0"))
    center;
  let check_nonneg v =
    Array.iter
      (fun x -> if x < 0. then invalid_arg (who ^ ": negative component"))
      v
  in
  check_nonneg initial;
  Array.iter check_nonneg plans

(* Dominance pruning (Section 4.4): a plan with a componentwise-cheaper
   rival can never win the argmax — monotone rounding keeps its computed
   denominator at least the rival's at every vertex, so its ratio never
   strictly exceeds the rival's.  Only lower-index dominators prune
   (preserving lowest-index tie-breaking), and only dominators whose
   computed total is positive (an all-underflow dominator could turn a
   finite ratio into a skipped NaN). *)
let dominance_kept ~prune ~plans ~totals =
  let np = Array.length plans in
  if not prune then Array.init np Fun.id
  else begin
    let keep = Array.make np true in
    for j = 1 to np - 1 do
      let i = ref 0 in
      while keep.(j) && !i < j do
        if totals.(!i) > 0. && Vec.dominates plans.(!i) plans.(j) then
          keep.(j) <- false;
        incr i
      done
    done;
    let n = Array.fold_left (fun acc k -> if k then acc + 1 else acc) 0 keep in
    let kept = Array.make n 0 in
    let next = ref 0 in
    Array.iteri
      (fun j k ->
        if k then begin
          kept.(!next) <- j;
          incr next
        end)
      keep;
    kept
  end

type t = {
  center : Vec.t;
  dim : int;
  nv : int;
  mask : int;
  kept : int array;
  sums : float array;
  num_sums : float array;
  degenerate : bool array;
  initial_zero : bool;
}

let dim t = t.dim
let num_patterns t = t.nv
let kept t = Array.copy t.kept
let center t = Vec.copy t.center

(* Subset sums by the highest-bit recurrence: the entry for a pattern
   whose top bit is [i] extends the entry with that bit cleared by
   [w.(i)], so every subset accumulates its terms in ascending index
   order — the same association as an ascending fold, which keeps the
   full-pattern entry bit-identical to the [s_total] prepass sum. *)
let subset_sums w m out pos =
  out.(pos) <- 0.;
  for i = 0 to m - 1 do
    let bit = 1 lsl i in
    for k = bit to (2 * bit) - 1 do
      out.(pos + k) <- out.(pos + k - bit) +. w.(i)
    done
  done

let ascending_sum w =
  let acc = ref 0. in
  for i = 0 to Array.length w - 1 do
    acc := !acc +. w.(i)
  done;
  !acc

let vertex_value ~delta ~inv a b = Float.fma delta a (b *. inv)

let build ?pool ?(prune = true) ~plans ~initial ~center () =
  let np = Array.length plans in
  if np = 0 then invalid_arg "Sweep.build: no plans";
  let m = Vec.dim center in
  if m < 1 then
    invalid_arg (Printf.sprintf "Sweep.build: dimension %d outside 1..%d" m max_dim);
  if not (supported ~dim:m) then
    invalid_arg (Limits.exhaustive_gate_message ~who:"Sweep.build" ~dim:m);
  validate_inputs ~who:"Sweep.build" ~plans ~initial ~center;
  Obs.with_span "sweep.build" @@ fun () ->
  let nv = 1 lsl m in
  let mask = nv - 1 in
  let weights = Array.map (fun p -> Vec.map2 ( *. ) p center) plans in
  let totals = Array.map ascending_sum weights in
  let degenerate = Array.map (fun s -> Float.equal s 0.) totals in
  let num_weights = Vec.map2 ( *. ) initial center in
  let initial_zero = Float.equal (ascending_sum num_weights) 0. in
  let kept = dominance_kept ~prune ~plans ~totals in
  Obs.add m_plans_pruned (np - Array.length kept);
  let nkept = Array.length kept in
  let sums = Array.make (nkept * nv) 0. in
  let fill lo hi =
    for kp = lo to hi - 1 do
      (* qsens-check: disable=C001 — each chunk writes the disjoint [kp*nv, (kp+1)*nv) block of [sums] *)
      subset_sums weights.(kept.(kp)) m sums (kp * nv)
    done
  in
  (match pool with
  | Some p when Pool.domains p > 1 && nkept > 1 ->
      Pool.parallel_for_chunked p ~n:nkept fill
  | _ -> fill 0 nkept);
  let num_sums = Array.make nv 0. in
  subset_sums num_weights m num_sums 0;
  {
    center = Vec.copy center;
    dim = m;
    nv;
    mask;
    kept;
    sums;
    num_sums;
    degenerate;
    initial_zero;
  }

let eval ?budget t ~delta =
  if delta < 1. then invalid_arg "Sweep.eval: delta must be >= 1";
  Obs.add m_evals 1;
  let inv = 1. /. delta in
  let nv = t.nv and mask = t.mask in
  let sums = t.sums and num_sums = t.num_sums in
  let best = ref neg_infinity and best_pat = ref (-1) and degen = ref 0 in
  (* delta = 1 collapses the box to its center: every pattern names the
     same vertex, differing only in summation order.  Evaluate pattern 0
     alone — the ascending scan's tie-winner up to that ulp wobble — so
     the branch-and-bound path, which pins every branch at a collapsed
     box, stays bit-identical to this reference. *)
  let pattern_hi = if Float.equal delta 1. then 0 else nv - 1 in
  for kp = 0 to Array.length t.kept - 1 do
    let p = t.kept.(kp) in
    if t.degenerate.(p) && t.initial_zero then incr degen
    else begin
      (* Cooperative checkpoint: one unit per vertex about to be
         scanned, charged a plan row at a time.  Budget checks never
         touch the float pipeline, so a surviving eval is bit-identical
         to an unbudgeted one. *)
      Budget.spend_opt budget ~who:"Sweep.eval" (pattern_hi + 1);
      let off = kp * nv in
      for k = 0 to pattern_hi do
        let den = vertex_value ~delta ~inv sums.(off + k) sums.(off + (mask lxor k)) in
        let num = vertex_value ~delta ~inv num_sums.(k) num_sums.(mask lxor k) in
        let r = num /. den in
        (* Strict improvement: lowest (plan, pattern) wins ties and NaN
           ratios fall through, exactly like the per-plan argmax. *)
        if r > !best then begin
          best := r;
          best_pat := k
        end
      done
    end
  done;
  Obs.add m_degenerate_ratios !degen;
  if !best_pat >= 0 then (!best, !best_pat)
  else ((if !degen > 0 then nan else !best), -1)

let check_pattern t pattern =
  if pattern < 0 || pattern >= t.nv then
    invalid_arg
      (Printf.sprintf "Sweep: pattern %d outside 0..%d" pattern (t.nv - 1))

let kept_slot t plan =
  if plan < 0 || plan >= Array.length t.degenerate then
    invalid_arg (Printf.sprintf "Sweep: plan %d out of range" plan);
  let rec go kp =
    if kp >= Array.length t.kept then
      invalid_arg (Printf.sprintf "Sweep: plan %d was pruned" plan)
    else if t.kept.(kp) = plan then kp
    else go (kp + 1)
  in
  go 0

let plan_a t ~plan ~pattern =
  check_pattern t pattern;
  t.sums.((kept_slot t plan * t.nv) + pattern)

let plan_b t ~plan ~pattern =
  check_pattern t pattern;
  t.sums.((kept_slot t plan * t.nv) + (t.mask lxor pattern))

let initial_a t ~pattern =
  check_pattern t pattern;
  t.num_sums.(pattern)

let initial_b t ~pattern =
  check_pattern t pattern;
  t.num_sums.(t.mask lxor pattern)

(* ------------------------------------------------------------------ *)
(* Branch-and-bound evaluation: same worst-case GTC argmax as [eval],
   computed without the 2^dim subset-sum tables.  Per delta, every kept
   plan becomes a {!Vertex_enum.Bnb.spec} whose leaf kernel re-derives
   the exact [eval] ratio — ascending-index numerator and denominator
   partial sums through the shared [vertex_value] — so the result is
   bit-identical to the exhaustive sweep wherever both are defined. *)
module Bnb = struct
  let max_dim = Limits.bnb_max_dim
  let supported ~dim = dim >= 1 && dim <= max_dim

  type t = {
    center : Vec.t;
    dim : int;
    kept : int array;
    weights : float array array;  (* kept-slot indexed *)
    num_weights : float array;
    wsum : float array;  (* kept x (dim+1) ascending prefix sums *)
    nsum : float array;  (* (dim+1) ascending prefix sums *)
    eq : bool array array;  (* weight bitwise equal to the initial's *)
    pinned : bool array array;  (* both weights bitwise +0. *)
    identical : bool array;  (* whole plan bitwise equal to the initial *)
    degenerate : bool array;  (* original plan indexed *)
    initial_zero : bool;
  }

  let dim t = t.dim
  let kept t = Array.copy t.kept
  let center t = Vec.copy t.center

  let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

  let build ?(prune = true) ~plans ~initial ~center () =
    let np = Array.length plans in
    if np = 0 then invalid_arg "Sweep.Bnb.build: no plans";
    let m = Vec.dim center in
    if m < 1 then
      invalid_arg
        (Printf.sprintf "Sweep.Bnb.build: dimension %d outside 1..%d" m max_dim);
    if not (supported ~dim:m) then
      invalid_arg (Limits.bnb_gate_message ~who:"Sweep.Bnb.build" ~dim:m);
    validate_inputs ~who:"Sweep.Bnb.build" ~plans ~initial ~center;
    Obs.with_span "bnb.build" @@ fun () ->
    let all_weights = Array.map (fun p -> Vec.map2 ( *. ) p center) plans in
    let totals = Array.map ascending_sum all_weights in
    let degenerate = Array.map (fun s -> Float.equal s 0.) totals in
    let num_weights = Vec.map2 ( *. ) initial center in
    let initial_zero = Float.equal (ascending_sum num_weights) 0. in
    let kept = dominance_kept ~prune ~plans ~totals in
    Obs.add m_plans_pruned (np - Array.length kept);
    let weights = Array.map (fun p -> all_weights.(p)) kept in
    let wsum = Kernel.prefix_sums (Kernel.pack weights) in
    let nsum = Kernel.prefix_sums (Kernel.pack [| num_weights |]) in
    let eq =
      Array.map
        (fun w -> Array.init m (fun i -> same_bits w.(i) num_weights.(i)))
        weights
    in
    let zero_bits x = Int64.equal (Int64.bits_of_float x) 0L in
    let pinned =
      Array.map
        (fun w ->
          Array.init m (fun i -> zero_bits w.(i) && zero_bits num_weights.(i)))
        weights
    in
    let identical = Array.map (fun e -> Array.for_all Fun.id e) eq in
    {
      center = Vec.copy center;
      dim = m;
      kept;
      weights;
      num_weights;
      wsum;
      nsum;
      eq;
      pinned;
      identical;
      degenerate;
      initial_zero;
    }

  (* Exact exhaustive kernel for one pattern: ascending-index partial
     sums on both sides — the same association as the subset-sum tables'
     highest-bit recurrence — through the shared [vertex_value].  The
     search result is bit-identical to [Sweep.eval] because every
     surviving leaf goes through this. *)
  let leaf_ratio ~delta ~inv ~wn ~wd k =
    let an = ref 0. and bn = ref 0. and ad = ref 0. and bd = ref 0. in
    for i = 0 to Array.length wd - 1 do
      if k land (1 lsl i) <> 0 then begin
        an := !an +. wn.(i);
        ad := !ad +. wd.(i)
      end
      else begin
        bn := !bn +. wn.(i);
        bd := !bd +. wd.(i)
      end
    done;
    vertex_value ~delta ~inv !an !bn /. vertex_value ~delta ~inv !ad !bd

  (* Per-coordinate branch terms for the bounds: with delta >= 1 and
     nonnegative weights, the high side [delta * w] is the larger term
     and the low side [w / delta] the smaller, so suffix maxima and
     minima reduce to scaled prefix sums.  [num_bound_eq] is accumulated
     term by term — never as [delta * (total - eq_part)] — because
     cancellation in that difference could undershoot the true bound by
     far more than the search's 1e-12 inflation. *)
  let spec_of t ~delta ~inv s =
    let m = t.dim in
    let wd = t.weights.(s) and wn = t.num_weights in
    let eq = t.eq.(s) in
    let num_hi = Array.make m 0.
    and num_lo = Array.make m 0.
    and den_hi = Array.make m 0.
    and den_lo = Array.make m 0.
    and num_bound = Array.make m 0.
    and num_bound_eq = Array.make m 0.
    and den_bound = Array.make m 0. in
    let stride = m + 1 in
    let acc_eq = ref 0. in
    for i = 0 to m - 1 do
      num_hi.(i) <- delta *. wn.(i);
      num_lo.(i) <- wn.(i) *. inv;
      den_hi.(i) <- delta *. wd.(i);
      den_lo.(i) <- wd.(i) *. inv;
      num_bound.(i) <- delta *. t.nsum.(i + 1);
      den_bound.(i) <- inv *. t.wsum.((s * stride) + i + 1);
      acc_eq := !acc_eq +. (if eq.(i) then wn.(i) *. inv else delta *. wn.(i));
      num_bound_eq.(i) <- !acc_eq
    done;
    {
      Vertex_enum.Bnb.dim = m;
      num_hi;
      num_lo;
      den_hi;
      den_lo;
      num_bound;
      num_bound_eq;
      den_bound;
      pinned = t.pinned.(s);
      identical = t.identical.(s);
      leaf = (fun k -> leaf_ratio ~delta ~inv ~wn ~wd k);
    }

  let eval_with_stats ?pool ?budget t ~delta =
    if delta < 1. then invalid_arg "Sweep.Bnb.eval: delta must be >= 1";
    Obs.add m_bnb_evals 1;
    let inv = 1. /. delta in
    let nkept = Array.length t.kept in
    let degen = ref 0 in
    let result =
      if Float.equal delta 1. then begin
        (* Same collapsed-box shortcut as [eval]: pattern 0 only. *)
        let best = ref neg_infinity and best_pat = ref (-1) in
        let leaves = ref 0 in
        for s = 0 to nkept - 1 do
          if t.degenerate.(t.kept.(s)) && t.initial_zero then incr degen
          else begin
            Budget.spend_opt budget ~who:"Sweep.Bnb.eval" 1;
            incr leaves;
            let r =
              leaf_ratio ~delta ~inv ~wn:t.num_weights ~wd:t.weights.(s) 0
            in
            if r > !best then begin
              best := r;
              best_pat := 0
            end
          end
        done;
        Obs.add m_bnb_nodes !leaves;
        Obs.add m_bnb_leaves !leaves;
        let res =
          if !best_pat >= 0 then (!best, !best_pat)
          else ((if !degen > 0 then nan else !best), -1)
        in
        (res, (!leaves, !leaves))
      end
      else begin
        let specs = ref [] in
        for s = nkept - 1 downto 0 do
          if t.degenerate.(t.kept.(s)) && t.initial_zero then incr degen
          else specs := spec_of t ~delta ~inv s :: !specs
        done;
        let specs = Array.of_list !specs in
        let stats = Vertex_enum.Bnb.fresh_stats () in
        let v, pat, _ = Vertex_enum.Bnb.search ?pool ~stats ?budget specs in
        Obs.add m_bnb_nodes stats.Vertex_enum.Bnb.nodes;
        Obs.add m_bnb_leaves stats.Vertex_enum.Bnb.leaves;
        let res =
          if pat >= 0 then (v, pat)
          else ((if !degen > 0 then nan else v), -1)
        in
        (res, (stats.Vertex_enum.Bnb.nodes, stats.Vertex_enum.Bnb.leaves))
      end
    in
    Obs.add m_degenerate_ratios !degen;
    result

  let eval ?pool ?budget t ~delta = fst (eval_with_stats ?pool ?budget t ~delta)
end
