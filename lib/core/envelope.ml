open Qsens_linalg

type segment = { plan : int; from_theta : float; to_theta : float }

let line plans dim i =
  let v = plans.(i) in
  let b = v.(dim) in
  let a = ref 0. in
  Array.iteri (fun k x -> if k <> dim then a := !a +. x) v;
  (!a, b)

let compute ~plans ~dim ~lo ~hi =
  let n = Array.length plans in
  if n = 0 then invalid_arg "Envelope.compute: no plans";
  if dim < 0 || dim >= Vec.dim plans.(0) then
    invalid_arg "Envelope.compute: bad dimension";
  if lo >= hi then invalid_arg "Envelope.compute: lo >= hi";
  let lines = Array.init n (line plans dim) in
  let cost i theta =
    let a, b = lines.(i) in
    a +. (b *. theta)
  in
  let best_at theta =
    let best = ref 0 in
    for i = 1 to n - 1 do
      let ci = cost i theta and cb = cost !best theta in
      (* Ties break toward the shallower slope so the walk advances. *)
      if
        ci < cb -. (1e-12 *. Float.abs cb)
        || (Float.abs (ci -. cb) <= 1e-12 *. Float.abs cb
           && snd lines.(i) < snd lines.(!best))
      then best := i
    done;
    !best
  in
  (* Walk the envelope left to right: from the current optimal line, the
     next breakpoint is the nearest intersection with a line that is
     lower beyond it (necessarily of smaller slope difference sign). *)
  let rec walk theta current acc =
    let a_c, b_c = lines.(current) in
    let next = ref None in
    for j = 0 to n - 1 do
      if j <> current then begin
        let a_j, b_j = lines.(j) in
        if b_j < b_c -. 1e-300 then begin
          (* lines with smaller slope eventually undercut *)
          let cross = (a_j -. a_c) /. (b_c -. b_j) in
          if cross > theta +. (1e-12 *. Float.max 1. theta) && cross < hi
          then
            match !next with
            | Some (t, _) when t <= cross -> ()
            | _ -> next := Some (cross, j)
        end
      end
    done;
    match !next with
    | None -> List.rev ({ plan = current; from_theta = theta; to_theta = hi } :: acc)
    | Some (t, _) ->
        let seg = { plan = current; from_theta = theta; to_theta = t } in
        (* Re-evaluate the winner just beyond the crossing (several lines
           may cross together). *)
        let eps = (hi -. lo) *. 1e-9 in
        let nxt = best_at (Float.min hi (t +. eps)) in
        if nxt = current then
          (* numerical tie: skip forward *)
          walk (t +. eps) current acc
        else walk t nxt (seg :: acc)
  in
  walk lo (best_at lo) []

let breakpoints segments =
  match segments with
  | [] -> []
  | _ :: rest -> List.map (fun s -> s.from_theta) rest

let plan_at segments theta =
  match
    List.find_opt
      (fun s -> theta >= s.from_theta -. 1e-12 && theta <= s.to_theta +. 1e-12)
      segments
  with
  | Some s -> s.plan
  | None -> raise Not_found
