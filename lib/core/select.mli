(** Robust plan selection over the candidate-optimal set.

    The worst-case machinery characterizes how bad the classic
    optimizer's choice can get when storage cost parameters are wrong
    (GTC up to [delta^2], Theorem 1); this module acts on the
    characterization by comparing three decision rules over the same
    multiplicative error box [[c/delta, c*delta]^m]:

    + {b classic} — argmin of [U . c] at the estimated costs [c] (the
      all-ones point), exactly {!Framework.optimal_index};
    + {b least expected cost} (Chu-Halpern-Seshadri) — argmin of
      [E(U . C)] under the per-coordinate uniform prior over the box.
      Expectation is linear, so [E(U . C) = U . E(C)] and [E(C)] is the
      componentwise interval midpoint [c_i * (delta + 1/delta) / 2]:
      every candidate's score is one {!Qsens_linalg.Kernel} dot against
      the midpoint vector.  For the symmetric box around the estimate
      the midpoint is a common positive scaling of [c], so LEC provably
      agrees with classic — the rule only separates under asymmetric
      priors, and the closed form here makes that a visible theorem
      rather than a surprise (DESIGN.md section 15);
    + {b minimax regret} (PARQO-style penalty) — argmin over candidates
      [p] of the worst-case GTC of [p] against the whole candidate set
      over the box, i.e. [max over box of (U_p . C) / (min_q U_q . C)].
      Each candidate's regret reuses the worst-case engine with
      [initial := p], so the classic candidate's column reproduces
      {!Worst_case.curve} bit-for-bit.

    {2 Tier dispatch and determinism}

    Regret evaluation rides the same three-tier dimension dispatch as
    {!Worst_case.curve_with_path}: exhaustive subset-sum sweeps up to
    {!Limits.exhaustive_max_dim}, budgeted branch-and-bound up to
    {!Limits.bnb_max_dim} (a search that trips its per-(candidate,
    delta) node budget degrades to the linear-fractional program for
    that cell alone, counted in [fallbacks]), and the linear-fractional
    program beyond.  All argmins scan in ascending candidate order with
    strict improvement and skip NaN scores, so selections are
    bit-identical across pool sizes and across the exhaustive/B&B tiers
    wherever both are defined — the qcheck property the test suite
    drives.  At [delta = 1] the box is a point, every regret is the cost
    ratio at the estimate, and all three rules return the classic
    index. *)

open Qsens_linalg

type point = {
  delta : float;
  classic : int;  (** argmin cost at the estimated point *)
  lec : int;  (** argmin expected cost under the uniform box prior *)
  minimax : int;  (** argmin worst-case regret over the box *)
  expected : float array;  (** per-candidate [E(U . C)] *)
  regret : float array;  (** per-candidate worst-case GTC over the box *)
  fallbacks : int;
      (** regret cells where the B&B node budget tripped and the
          linear-fractional program answered instead *)
}

type engine = [ `Auto | `Exhaustive | `Bnb ]

val curve :
  ?deltas:float list ->
  ?pool:Qsens_parallel.Pool.t ->
  ?node_budget:int ->
  ?engine:engine ->
  plans:Vec.t array ->
  unit ->
  point list * string
(** [curve ~plans ()] scores every candidate at every delta
    (default {!Worst_case.default_deltas}) and returns the per-delta
    selections plus the evaluation path taken (the same strings the
    worst-case CLI prints, with budget-fallback counts appended).
    [engine] defaults to [`Auto] (dimension dispatch); [`Exhaustive] and
    [`Bnb] force a tier for cross-checks and raise [Invalid_argument]
    past that tier's gate, like the underlying builders.  Raises
    [Invalid_argument] on an empty plan set or mismatched dimensions. *)

val select :
  ?pool:Qsens_parallel.Pool.t ->
  ?node_budget:int ->
  ?engine:engine ->
  plans:Vec.t array ->
  delta:float ->
  unit ->
  point
(** Single-delta {!curve}; bit-identical to the matching curve point. *)

val estimate :
  ?seed:int ->
  ?samples:int ->
  ?budget:Qsens_budget.Budget.t ->
  plans:Vec.t array ->
  delta:float ->
  unit ->
  point
(** Monte-Carlo floor for the service's degradation ladder: [classic]
    and [expected] (hence [lec]) are exact, but [regret] is a
    lower-bound estimate from a seeded log-uniform sample of the box
    ({!Qsens_geom.Box.sample}).  With [?budget], the sample count is
    clamped to the remaining allowance (one unit per plan ratio) and
    charged up front — never raises
    {!Qsens_budget.Budget.Exhausted}. *)

val classic_index : plans:Vec.t array -> int
(** The classic optimum: {!Framework.optimal_index} at the all-ones
    estimated cost point. *)

val expected_costs :
  kernel:Kernel.t -> center:Vec.t -> delta:float -> float array
(** Per-candidate expected cost under the uniform prior over
    [Box.around center ~delta]: one {!Qsens_linalg.Kernel.dot_rows}
    against the componentwise midpoint [c_i * (delta + 1/delta) / 2].
    Raises [Invalid_argument] if [delta < 1]. *)

val regrets_fractional :
  ?pool:Qsens_parallel.Pool.t ->
  plans:Vec.t array ->
  center:Vec.t ->
  float ->
  float array
(** The bottom exact tier on its own: every candidate's worst-case GTC
    over [Box.around center ~delta] via one linear-fractional program
    per (candidate, plan) pair — no dimension gate, no tables.  The
    service's fractional tier calls this directly. *)

val point_of_regrets :
  kernel:Kernel.t ->
  center:Vec.t ->
  classic:int ->
  delta:float ->
  regret:float array ->
  fallbacks:int ->
  point
(** Assemble a selection from an externally computed regret column —
    the service's tiers evaluate regrets through their own memoized
    sweeps and must agree bit-for-bit with {!curve}; routing both
    through this single argmin keeps the tie-breaking in one place. *)
