open Qsens_linalg
open Qsens_cost

type dim_kind =
  | Cpu_dim
  | Table_dim of string
  | Index_dim of string
  | Combined_dim of string
  | Temp_dim
  | Shared_dim

(* Group names come in two flavours: per-resource ("cpu", "seek:<dev>",
   "xfer:<dev>") and per-device ("cpu", "dev:<dev>").  Device names encode
   the layout: "tbl:x" / "idx:x" (per-table-and-index), "dev:x" /
   "dev:temp" (per-table), "disk" (same-device). *)
let kind_of_device dev =
  if dev = "disk" then Shared_dim
  else if dev = "dev:temp" then Temp_dim
  else
    match String.index_opt dev ':' with
    | Some i -> begin
        let prefix = String.sub dev 0 i in
        let rest = String.sub dev (i + 1) (String.length dev - i - 1) in
        match prefix with
        | "tbl" -> Table_dim rest
        | "idx" -> Index_dim rest
        | "dev" -> Combined_dim rest
        | _ -> Shared_dim
      end
    | None -> Shared_dim

let kind_of_name name =
  if name = "cpu" then Cpu_dim
  else
    match String.index_opt name ':' with
    | None -> Shared_dim
    | Some i -> begin
        let prefix = String.sub name 0 i in
        let dev = String.sub name (i + 1) (String.length name - i - 1) in
        match prefix with
        | "seek" | "xfer" | "dev" -> kind_of_device dev
        | _ -> Shared_dim
      end

let dim_kinds groups = Array.map kind_of_name (Groups.names groups)

type kind =
  | Table_complementary
  | Access_path_complementary
  | Temp_complementary
  | Cpu_complementary

let kind_name = function
  | Table_complementary -> "table"
  | Access_path_complementary -> "access-path"
  | Temp_complementary -> "temp"
  | Cpu_complementary -> "cpu"

let kind_rank = function
  | Table_complementary -> 0
  | Access_path_complementary -> 1
  | Temp_complementary -> 2
  | Cpu_complementary -> 3

let compare_kind a b = Int.compare (kind_rank a) (kind_rank b)

type verdict = {
  complementary : bool;
  near : bool;
  max_ratio : float;
  kinds : kind list;
}

let classify ?(near_threshold = 10.) ~dims a b =
  if Vec.dim a <> Array.length dims || Vec.dim b <> Array.length dims then
    invalid_arg "Complementary.classify: dimension mismatch";
  let comp_dims = Bounds.complementary_dims a b in
  let max_ratio = Bounds.max_element_ratio a b in
  let complementary = comp_dims <> [] in
  let near = (not complementary) && max_ratio > near_threshold in
  (* Dimensions responsible: exact zero divergences, or (for near pairs)
     the dimensions whose element ratio exceeds the threshold. *)
  let za = 1e-9 *. Float.max 1e-300 (Vec.norm_inf a) in
  let zb = 1e-9 *. Float.max 1e-300 (Vec.norm_inf b) in
  let divergent =
    if complementary then comp_dims
    else if near then begin
      let acc = ref [] in
      Array.iteri
        (fun i ai ->
          let bi = b.(i) in
          if ai > za && bi > zb then begin
            let r = Float.max (ai /. bi) (bi /. ai) in
            if r > near_threshold then acc := i :: !acc
          end)
        a;
      !acc
    end
    else []
  in
  (* A divergence on a table's data device paired with an opposite
     divergence on the same table's index device is an access-path
     difference (index-only versus fetch), not a table difference. *)
  let index_tables =
    List.filter_map
      (fun i ->
        match dims.(i) with Index_dim t -> Some t | _ -> None)
      divergent
  in
  let kind_of_dim i =
    match dims.(i) with
    | Temp_dim -> Some Temp_complementary
    | Index_dim _ -> Some Access_path_complementary
    | Table_dim t ->
        if List.exists (String.equal t) index_tables then
          Some Access_path_complementary
        else Some Table_complementary
    | Combined_dim _ -> Some Table_complementary
    | Cpu_dim -> Some Cpu_complementary
    | Shared_dim -> None
  in
  let kinds =
    List.filter_map kind_of_dim divergent |> List.sort_uniq compare_kind
  in
  { complementary; near; max_ratio; kinds }
