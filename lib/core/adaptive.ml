open Qsens_linalg
module Obs = Qsens_obs.Obs

let m_steps = Obs.counter ~help:"adaptive simulation steps" "adaptive.steps"

let m_reopts =
  Obs.counter ~help:"plan switches during adaptive simulation"
    "adaptive.reoptimizations"

type policy = Never | Always | Periodic of int | Threshold of float

let policy_name = function
  | Never -> "never"
  | Always -> "always"
  | Periodic k -> Printf.sprintf "every-%d" k
  | Threshold g -> Printf.sprintf "gtc>%.2g" g

type outcome = {
  policy : policy;
  total_cost : float;
  reoptimizations : int;
  regret : float;
  worst_step_gtc : float;
}

type trace = Vec.t array

let drift_trace ?(seed = 3) ~dim ~horizon ?(drift = 0.05)
    ?(spike_probability = 0.01) ?(spike_magnitude = 20.)
    ?(max_delta = 100.) () =
  if horizon < 1 then invalid_arg "Adaptive.drift_trace: horizon < 1";
  let st = Random.State.make [| seed |] in
  let log_theta = Array.make dim 0. in
  let lo = -.log max_delta and hi = log max_delta in
  (* Spikes decay multiplicatively so a degraded device recovers over
     roughly ten steps, like a finishing rebuild. *)
  let spike = Array.make dim 0. in
  Array.init horizon (fun _ ->
      for d = 0 to dim - 1 do
        let step = (Random.State.float st 2. -. 1.) *. drift in
        log_theta.(d) <- Float.min hi (Float.max lo (log_theta.(d) +. step));
        spike.(d) <- spike.(d) *. 0.8
      done;
      if Random.State.float st 1. < spike_probability then begin
        let d = Random.State.int st dim in
        spike.(d) <- log spike_magnitude
      end;
      Array.init dim (fun d ->
          Float.min max_delta
            (Float.max (1. /. max_delta) (exp (log_theta.(d) +. spike.(d))))))

let simulate ~plans ~trace policy =
  if Array.length plans = 0 then invalid_arg "Adaptive.simulate: no plans";
  if Array.length trace = 0 then invalid_arg "Adaptive.simulate: empty trace";
  let m = Vec.dim trace.(0) in
  let ones = Vec.make m 1. in
  let current = ref (Framework.optimal_index ~plans ~costs:ones) in
  let total = ref 0. and reopts = ref 0 and worst = ref 1. in
  Array.iteri
    (fun step theta ->
      let reoptimize =
        match policy with
        | Never -> false
        | Always -> true
        | Periodic k -> step mod k = 0
        | Threshold g ->
            Framework.global_relative_cost ~plans ~a:plans.(!current)
              ~costs:theta
            > g
      in
      Obs.add m_steps 1;
      if reoptimize then begin
        let best = Framework.optimal_index ~plans ~costs:theta in
        if best <> !current then begin
          current := best;
          incr reopts;
          Obs.add m_reopts 1
        end
      end;
      total := !total +. Vec.dot plans.(!current) theta;
      let gtc =
        Framework.global_relative_cost ~plans ~a:plans.(!current) ~costs:theta
      in
      if gtc > !worst then worst := gtc)
    trace;
  {
    policy;
    total_cost = !total;
    reoptimizations = !reopts;
    regret = nan;
    worst_step_gtc = !worst;
  }

let compare_policies ~plans ~trace policies =
  let oracle = simulate ~plans ~trace Always in
  List.map
    (fun p ->
      let o = if p = Always then oracle else simulate ~plans ~trace p in
      { o with regret = o.total_cost /. oracle.total_cost })
    policies
