open Qsens_linalg
open Qsens_geom
open Qsens_optimizer
open Qsens_faults
module Obs = Qsens_obs.Obs

let m_samples = Obs.counter ~help:"probe observations kept" "probe.samples"
let m_dropped = Obs.counter ~help:"probe observations lost to faults" "probe.dropped"

let m_degraded =
  Obs.counter ~help:"estimates that fell back to the ridge prior" "probe.degraded"

type estimate = {
  usage : Vec.t;
  samples : int;
  residual : float;
  dropped : int;
  degraded : bool;
}

let recost_site = "probe.recost"

let sample_thetas st box count =
  List.init count (fun _ -> Box.sample st box)

(* Gate one narrow-interface call through the optional circuit breaker,
   recording the outcome.  Only transient errors count as breaker
   failures: a structural error (singular system, unknown signature the
   interface genuinely never saw) says nothing about interface health. *)
let guarded ?breaker ~site f =
  match breaker with
  | Some b when not (Fault.Breaker.acquire b) ->
      Error
        (Fault.Circuit_open
           { site; failures = Fault.Breaker.consecutive_failures b })
  | _ -> (
      let r = f () in
      (match (breaker, r) with
      | Some b, Ok _ -> Fault.Breaker.record_success b
      | Some b, Error e when Fault.transient e -> Fault.Breaker.record_failure b
      | _ -> ());
      r)

(* One resilient recost: retry with seeded backoff; a cache miss
   (Unknown_signature) re-pins the plan and retries the recost within
   the same attempt — the sample is recovered, not dropped. *)
let recost_resilient ~retry ?breaker ~narrow ~signature costs =
  Fault.Retry.run retry ~seed:0 ~site:recost_site (fun ~attempt:_ ->
      guarded ?breaker ~site:recost_site (fun () ->
          match Narrow.recost narrow ~signature ~costs with
          | Error (Fault.Unknown_signature _) -> (
              match Narrow.repin narrow ~signature with
              | Ok () -> Narrow.recost narrow ~signature ~costs
              | Error e -> Error e)
          | r -> r))

let max_rel_residual usage observations =
  List.fold_left
    (fun acc (theta, obs) ->
      let pred = Vec.dot theta usage in
      if Float.equal obs 0. then acc
      else Float.max acc (Float.abs (pred -. obs) /. Float.abs obs))
    0. observations

let estimate_usage ?(seed = 7) ?(oversample = 2) ?(retry = Fault.Retry.none)
    ?breaker ?prior ?(robust = false) ~narrow ~expand ~signature ~box () =
  Obs.with_span "probe.estimate" @@ fun () ->
  let m = Box.dim box in
  let count = max (oversample * m) (m + 1) in
  let st = Random.State.make [| seed |] in
  let thetas = Vec.make m 1. :: sample_thetas st box (count - 1) in
  let dropped = ref 0 in
  let circuit = ref None in
  let last_error = ref None in
  let observations =
    List.filter_map
      (fun theta ->
        if Option.is_some !circuit then None
        else
          match
            recost_resilient ~retry ?breaker ~narrow ~signature (expand theta)
          with
          | Ok t -> Some (theta, t)
          | Error (Fault.Circuit_open _ as e) ->
              (* stop hammering an open circuit; fall back below *)
              circuit := Some e;
              incr dropped;
              None
          | Error e ->
              incr dropped;
              last_error := Some e;
              None)
      thetas
  in
  let got = List.length observations in
  Obs.add m_samples got;
  Obs.add m_dropped !dropped;
  if got >= m then begin
    let c = Mat.of_rows (List.map fst observations) in
    let t = Vec.of_list (List.map snd observations) in
    match (if robust then Mat.irls c t else Mat.least_squares c t) with
    | exception Mat.Singular -> Error Fault.Singular_system
    | usage ->
        Ok
          {
            usage;
            samples = got;
            residual = max_rel_residual usage observations;
            dropped = !dropped;
            degraded = false;
          }
  end
  else
    match (prior, got) with
    | Some prior, got when got >= 1 -> (
        (* Degraded path: too few surviving observations to determine
           the usage vector; shrink the unobserved directions toward the
           prior instead of refusing. *)
        let c = Mat.of_rows (List.map fst observations) in
        let t = Vec.of_list (List.map snd observations) in
        match Mat.ridge_least_squares ~ridge:1e-6 ~prior c t with
        | exception Mat.Singular -> Error Fault.Singular_system
        | usage ->
            Obs.add m_degraded 1;
            Ok
              {
                usage;
                samples = got;
                residual = max_rel_residual usage observations;
                dropped = !dropped;
                degraded = true;
              })
    | _ -> (
        match !circuit with
        | Some e -> Error e
        | None -> (
            match (got, !last_error) with
            | 0, Some e -> Error e
            | _ -> Error (Fault.Too_few_observations { got; need = m })))

let validate ?(seed = 11) ?(trials = 16) ?(retry = Fault.Retry.none) ?breaker
    ~narrow ~expand ~signature ~box estimate =
  let st = Random.State.make [| seed |] in
  let last_error = ref None in
  let rec go i worst used =
    if i >= trials then
      if used > 0 then Ok worst
      else
        Error
          (match !last_error with
          | Some e -> e
          | None -> Fault.Too_few_observations { got = 0; need = 1 })
    else begin
      let theta = Box.sample st box in
      match
        recost_resilient ~retry ?breaker ~narrow ~signature (expand theta)
      with
      | Error e ->
          last_error := Some e;
          go (i + 1) worst used
      | Ok obs ->
          let pred = Vec.dot theta estimate.usage in
          let err =
            if Float.equal obs 0. then Float.abs pred
            else Float.abs (pred -. obs) /. Float.abs obs
          in
          go (i + 1) (Float.max worst err) (used + 1)
    end
  in
  go 0 0. 0
