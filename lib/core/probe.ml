open Qsens_linalg
open Qsens_geom
open Qsens_optimizer

type estimate = { usage : Vec.t; samples : int; residual : float }

let sample_thetas st box count =
  List.init count (fun _ -> Box.sample st box)

let estimate_usage ?(seed = 7) ?(oversample = 2) ~narrow ~expand ~signature
    ~box () =
  let m = Box.dim box in
  let count = max (oversample * m) (m + 1) in
  let st = Random.State.make [| seed |] in
  let thetas = Vec.make m 1. :: sample_thetas st box (count - 1) in
  let observations =
    List.filter_map
      (fun theta ->
        match Narrow.recost narrow ~signature ~costs:(expand theta) with
        | Some t -> Some (theta, t)
        | None -> None)
      thetas
  in
  if List.length observations < m then None
  else begin
    let c = Qsens_linalg.Mat.of_rows (List.map fst observations) in
    let t = Vec.of_list (List.map snd observations) in
    match Qsens_linalg.Mat.least_squares c t with
    | exception Qsens_linalg.Mat.Singular -> None
    | usage ->
        let residual =
          List.fold_left
            (fun acc (theta, obs) ->
              let pred = Vec.dot theta usage in
              if Float.equal obs 0. then acc
              else Float.max acc (Float.abs (pred -. obs) /. Float.abs obs))
            0. observations
        in
        Some { usage; samples = List.length observations; residual }
  end

let validate ?(seed = 11) ?(trials = 16) ~narrow ~expand ~signature ~box
    estimate =
  let st = Random.State.make [| seed |] in
  let rec go i worst valid =
    if i >= trials then if valid then Some worst else None
    else begin
      let theta = Box.sample st box in
      match Narrow.recost narrow ~signature ~costs:(expand theta) with
      | None -> go (i + 1) worst valid
      | Some obs ->
          let pred = Vec.dot theta estimate.usage in
          let err =
            if Float.equal obs 0. then Float.abs pred
            else Float.abs (pred -. obs) /. Float.abs obs
          in
          go (i + 1) (Float.max worst err) true
    end
  in
  go 0 0. false
