open Qsens_linalg

type t = { full_dim : int; active : int array }

let make ~full_dim ~active =
  let active = Array.of_list active in
  Array.iter
    (fun i ->
      if i < 0 || i >= full_dim then invalid_arg "Projection.make: bad index")
    active;
  for i = 1 to Array.length active - 1 do
    if active.(i) <= active.(i - 1) then
      invalid_arg "Projection.make: indices must be strictly increasing"
  done;
  { full_dim; active }

let identity n = { full_dim = n; active = Array.init n Fun.id }
let active_dim t = Array.length t.active
let full_dim t = t.full_dim
let active t = t.active
let project t v = Array.map (fun i -> v.(i)) t.active

let inject t ~fill v =
  let out = Vec.make t.full_dim fill in
  Array.iteri (fun k i -> out.(i) <- v.(k)) t.active;
  out
