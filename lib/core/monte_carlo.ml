open Qsens_linalg
open Qsens_geom

type summary = {
  samples : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_seen : float;
  still_optimal : float;
}

let gtc_distribution ?(seed = 97) ?(samples = 10_000) ~plans ~initial ~delta
    () =
  if samples < 1 then invalid_arg "Monte_carlo.gtc_distribution: samples < 1";
  let m = Vec.dim initial in
  let box = Box.around (Vec.make m 1.) ~delta in
  let st = Random.State.make [| seed |] in
  let values = Array.make samples 1. in
  let optimal = ref 0 in
  for i = 0 to samples - 1 do
    let theta = Box.sample st box in
    let gtc = Framework.global_relative_cost ~plans ~a:initial ~costs:theta in
    values.(i) <- gtc;
    if gtc <= 1. +. 1e-9 then incr optimal
  done;
  Array.sort compare values;
  let pct p =
    let idx =
      min (samples - 1)
        (int_of_float (Float.of_int samples *. p))
    in
    values.(idx)
  in
  {
    samples;
    mean = Array.fold_left ( +. ) 0. values /. Float.of_int samples;
    p50 = pct 0.50;
    p90 = pct 0.90;
    p99 = pct 0.99;
    max_seen = values.(samples - 1);
    still_optimal = Float.of_int !optimal /. Float.of_int samples;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>samples          %d@,mean GTC         %.4g@,median           \
     %.4g@,p90              %.4g@,p99              %.4g@,max sampled      \
     %.4g@,still optimal    %.1f%%@]"
    s.samples s.mean s.p50 s.p90 s.p99 s.max_seen (100. *. s.still_optimal)
