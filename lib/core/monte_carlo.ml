open Qsens_linalg
open Qsens_geom

type summary = {
  samples : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_seen : float;
  still_optimal : float;
}

let gtc_distribution ?(seed = 97) ?(samples = 10_000) ?pool ?budget ~plans
    ~initial ~delta () =
  if samples < 1 then invalid_arg "Monte_carlo.gtc_distribution: samples < 1";
  (* Cooperative checkpoint: a budgeted run draws [min samples remaining]
     samples — the estimator degrades by doing less work rather than
     aborting — and only raises when nothing at all remains. *)
  let samples =
    match budget with
    | None -> samples
    | Some b ->
        let s = max 1 (min samples (Qsens_budget.Budget.remaining b)) in
        Qsens_budget.Budget.spend b ~who:"Monte_carlo.gtc_distribution" s;
        s
  in
  let m = Vec.dim initial in
  let box = Box.around (Vec.make m 1.) ~delta in
  let values = Array.make samples 1. in
  let optimal = ref 0 in
  let np = Array.length plans in
  (* Packed once; every sample is then one blocked matvec plus an argmin
     instead of per-plan [Vec.dot]s — entries bit-identical, the argmin
     replicates [Framework.optimal_index]'s strict-< lowest-index scan,
     and the 0-denominator branches match [Framework.relative_cost]. *)
  let mat = Kernel.pack plans in
  let gtc_at theta costs =
    if np = 0 then Framework.global_relative_cost ~plans ~a:initial ~costs:theta
    else begin
      Kernel.matvec_into mat theta costs;
      let best = ref 0 in
      for i = 1 to np - 1 do
        if Float.Array.get costs i < Float.Array.get costs !best then best := i
      done;
      let denom = Float.Array.get costs !best in
      if Float.equal denom 0. then
        if Float.equal (Vec.dot initial theta) 0. then 1. else infinity
      else Vec.dot initial theta /. denom
    end
  in
  let fill st lo hi =
    (* Per-task unboxed cost buffer (a Kernel scratch is single-owner
       state, so each domain makes its own). *)
    let costs_scratch =
      Kernel.Scratch.ensure (Kernel.Scratch.create ()) np
    in
    let local_optimal = ref 0 in
    for i = lo to hi - 1 do
      let theta = Box.sample st box in
      let gtc = gtc_at theta costs_scratch in
      (* qsens-check: disable=C001 — each task fills a disjoint [lo, hi) slice *)
      values.(i) <- gtc;
      if gtc <= 1. +. 1e-9 then incr local_optimal
    done;
    !local_optimal
  in
  (match pool with
  | Some p when Qsens_parallel.Pool.domains p > 1 && samples > 1 ->
      (* One PRNG stream per domain, seeded [seed + domain_id], over a
         fixed contiguous block of the sample index space: the summary
         depends only on (seed, samples, domains), never on scheduling. *)
      let d = Qsens_parallel.Pool.domains p in
      let per_block = Array.make d 0 in
      Qsens_parallel.Pool.run p
        (Array.init d (fun k ->
             let lo, hi =
               Qsens_parallel.Pool.chunk_bounds ~n:samples ~chunks:d k
             in
             fun () ->
               (* qsens-lint: disable=P001; qsens-check: disable=C001 — each task writes only its own block slot *)
               per_block.(k) <- fill (Random.State.make [| seed + k |]) lo hi));
      optimal := Array.fold_left ( + ) 0 per_block
  | _ -> optimal := fill (Random.State.make [| seed |]) 0 samples);
  Array.sort Float.compare values;
  let pct p =
    let idx =
      min (samples - 1)
        (int_of_float (Float.of_int samples *. p))
    in
    values.(idx)
  in
  {
    samples;
    mean = Array.fold_left ( +. ) 0. values /. Float.of_int samples;
    p50 = pct 0.50;
    p90 = pct 0.90;
    p99 = pct 0.99;
    max_seen = values.(samples - 1);
    still_optimal = Float.of_int !optimal /. Float.of_int samples;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>samples          %d@,mean GTC         %.4g@,median           \
     %.4g@,p90              %.4g@,p99              %.4g@,max sampled      \
     %.4g@,still optimal    %.1f%%@]"
    s.samples s.mean s.p50 s.p90 s.p99 s.max_seen (100. *. s.still_optimal)
