open Qsens_linalg
open Qsens_geom
module Obs = Qsens_obs.Obs

let m_degenerate_ratios =
  Obs.counter
    ~help:"degenerate (NaN) plan ratios skipped in worst-case argmax"
    "wc.degenerate_ratios"

let total_cost ~usage ~costs = Vec.dot usage costs

let relative_cost ~a ~b ~costs =
  let denom = Vec.dot b costs in
  if Float.equal denom 0. then
    if Float.equal (Vec.dot a costs) 0. then 1. else infinity
  else Vec.dot a costs /. denom

let optimal_index ~plans ~costs =
  if Array.length plans = 0 then invalid_arg "Framework.optimal_index: no plans";
  let best = ref 0 in
  for i = 1 to Array.length plans - 1 do
    if Vec.dot plans.(i) costs < Vec.dot plans.(!best) costs then best := i
  done;
  !best

let optimal_cost ~plans ~costs =
  Vec.dot plans.(optimal_index ~plans ~costs) costs

let global_relative_cost ~plans ~a ~costs =
  relative_cost ~a ~b:plans.(optimal_index ~plans ~costs) ~costs

let equicost ~a ~b ~costs =
  let ca = Vec.dot a costs and cb = Vec.dot b costs in
  Float.abs (ca -. cb) <= 1e-9 *. Float.max (Float.abs ca) (Float.abs cb)

let worst_case_gtc_fractional ?pool ~plans ~a box =
  if Array.length plans = 0 then
    invalid_arg "Framework.worst_case_gtc: no plans";
  let np = Array.length plans in
  (* Chunk-local argmax with strict improvement: the first (lowest-index)
     plan wins ties, as in the sequential loop.  Degenerate ratios (NaN
     from an everywhere-zero numerator and denominator) are skipped
     *explicitly*, with a count — `r > !best` being false for NaN used to
     drop them silently, leaving a stale default witness. *)
  let eval lo hi =
    let best = ref neg_infinity and witness = ref None and degen = ref 0 in
    for i = lo to hi - 1 do
      let r, corner = Fractional.max_ratio ~num:a ~den:plans.(i) box in
      if Float.is_nan r then incr degen
      else if r > !best then begin
        best := r;
        witness := Some corner
      end
    done;
    (!best, !witness, !degen)
  in
  let best, witness, degen =
    match pool with
    | Some p when Qsens_parallel.Pool.domains p > 1 && np > 1 ->
        (* Reduced in ascending chunk order; ties keep the left (earlier)
           chunk, so the result is bit-identical to sequential. *)
        Qsens_parallel.Pool.map_reduce p ~n:np ~map:eval
          ~reduce:(fun (b1, w1, d1) (b2, w2, d2) ->
            if b2 > b1 then (b2, w2, d1 + d2) else (b1, w1, d1 + d2))
          ~init:(neg_infinity, None, 0)
    | _ -> eval 0 np
  in
  Obs.add m_degenerate_ratios degen;
  match witness with
  | Some w -> (best, w)
  | None ->
      (* Every plan was degenerate: surface NaN rather than the
         neg_infinity sentinel with an arbitrary center witness. *)
      ((if degen > 0 then nan else best), Box.center box)

(* Beyond this dimension, enumerating all 2^m vertices stops paying off
   against the bisection path; the dispatcher falls back.  One source of
   truth with the Sweep gate: callers needing larger boxes go through
   the branch-and-bound path (Sweep.Bnb / Worst_case). *)
let vertex_max_dim = Limits.exhaustive_max_dim

(* Shared vertex-enumeration argmax: per plan, scan all box vertices with
   strict improvement (lowest pattern wins ties, NaN skipped), then the
   per-plan maxima reduce with strict improvement in plan-index order —
   mirroring the fractional path's tie-breaking exactly.  [den] abstracts
   the denominator dot so the packed-kernel path and the naive [Vec.dot]
   reference share one argmax and stay bit-identical by construction. *)
let worst_case_gtc_vertices ~den ?pool ~plans ~a box =
  let np = Array.length plans in
  let m = Box.dim box in
  if Vec.dim a <> m then
    invalid_arg "Framework.worst_case_gtc: dimension mismatch";
  Array.iter
    (fun p ->
      if Vec.dim p <> m then
        invalid_arg "Framework.worst_case_gtc: dimension mismatch")
    plans;
  let check_nonneg v =
    Array.iter
      (fun x ->
        if x < 0. then invalid_arg "Framework.worst_case_gtc: negative component")
      v
  in
  check_nonneg a;
  Array.iter check_nonneg plans;
  let nv = 1 lsl m in
  let verts = Array.init nv (Box.vertex box) in
  let nums = Array.map (Vec.dot a) verts in
  let eval lo hi =
    let best = ref neg_infinity and witness = ref None and degen = ref 0 in
    for pi = lo to hi - 1 do
      let pbest = ref neg_infinity and pk = ref (-1) in
      for k = 0 to nv - 1 do
        (* qsens-check: disable=C001 — [den] is a read-only cost evaluator supplied by the caller *)
        let r = nums.(k) /. den pi verts.(k) in
        if r > !pbest then begin
          pbest := r;
          pk := k
        end
      done;
      (* Every vertex ratio NaN means plan and numerator both vanish
         everywhere — the fractional path's degenerate case. *)
      if !pk < 0 then incr degen
      else if !pbest > !best then begin
        best := !pbest;
        witness := Some verts.(!pk)
      end
    done;
    (!best, !witness, !degen)
  in
  let best, witness, degen =
    match pool with
    | Some p when Qsens_parallel.Pool.domains p > 1 && np > 1 ->
        Qsens_parallel.Pool.map_reduce p ~n:np ~map:eval
          ~reduce:(fun (b1, w1, d1) (b2, w2, d2) ->
            if b2 > b1 then (b2, w2, d1 + d2) else (b1, w1, d1 + d2))
          ~init:(neg_infinity, None, 0)
    | _ -> eval 0 np
  in
  Obs.add m_degenerate_ratios degen;
  match witness with
  | Some w -> (best, w)
  | None -> ((if degen > 0 then nan else best), Box.center box)

let worst_case_gtc_naive ?pool ~plans ~a box =
  if Array.length plans = 0 then
    invalid_arg "Framework.worst_case_gtc: no plans";
  worst_case_gtc_vertices ?pool ~plans ~a box
    ~den:(fun pi v -> Vec.dot plans.(pi) v)

let worst_case_gtc ?pool ~plans ~a box =
  if Array.length plans = 0 then
    invalid_arg "Framework.worst_case_gtc: no plans";
  if Box.dim box <= vertex_max_dim then begin
    let mat = Kernel.pack plans in
    worst_case_gtc_vertices ?pool ~plans ~a box
      ~den:(fun pi v -> Kernel.dot_row mat pi v)
  end
  else worst_case_gtc_fractional ?pool ~plans ~a box
