open Qsens_linalg
open Qsens_geom

let total_cost ~usage ~costs = Vec.dot usage costs

let relative_cost ~a ~b ~costs =
  let denom = Vec.dot b costs in
  if denom = 0. then
    if Vec.dot a costs = 0. then 1. else infinity
  else Vec.dot a costs /. denom

let optimal_index ~plans ~costs =
  if Array.length plans = 0 then invalid_arg "Framework.optimal_index: no plans";
  let best = ref 0 in
  for i = 1 to Array.length plans - 1 do
    if Vec.dot plans.(i) costs < Vec.dot plans.(!best) costs then best := i
  done;
  !best

let optimal_cost ~plans ~costs =
  Vec.dot plans.(optimal_index ~plans ~costs) costs

let global_relative_cost ~plans ~a ~costs =
  relative_cost ~a ~b:plans.(optimal_index ~plans ~costs) ~costs

let equicost ~a ~b ~costs =
  let ca = Vec.dot a costs and cb = Vec.dot b costs in
  Float.abs (ca -. cb) <= 1e-9 *. Float.max (Float.abs ca) (Float.abs cb)

let worst_case_gtc ~plans ~a ~box =
  if Array.length plans = 0 then
    invalid_arg "Framework.worst_case_gtc: no plans";
  let best = ref neg_infinity and witness = ref (Box.center box) in
  Array.iter
    (fun b ->
      let r, corner = Fractional.max_ratio ~num:a ~den:b box in
      if r > !best then begin
        best := r;
        witness := corner
      end)
    plans;
  (!best, !witness)
