(** Separable delta-sweep cache for the worst-case analysis.

    By Observation 2 the worst-case global relative cost over the box
    [[c_i/delta, c_i*delta]^m] is attained at a box vertex.  A vertex is a
    sign pattern [s] — component [i] sits at [c_i*delta] when bit [i] of
    the pattern is set, at [c_i/delta] otherwise — so a plan's cost there
    separates as

    {[ U . C(delta) = delta * A_s(U) + (1/delta) * B_s(U) ]}

    with [A_s = sum over set bits of u_i*c_i] and [B_s] the complementary
    sum.  The [A]/[B] tables depend only on the plan set and the box
    {e center}, never on [delta]: build them once per curve, then every
    grid point costs two fused multiply-adds per (plan, vertex) instead of
    a fresh vertex enumeration with full dot products.

    One subset-sum table [S] per plan stores both halves:
    [A_s = S(pattern)] and [B_s = S(complement of pattern)].

    {2 Determinism contract}

    Subset sums accumulate in ascending component-index order (the
    highest-bit recurrence), vertex values use one shared
    [fma delta a (b * (1/delta))] with [1/delta] computed once per
    [eval], and the flat argmax scans plans in ascending original index
    and patterns in ascending order with strict improvement — so results
    are bit-identical for any pool size, and identical whether the tables
    are built once or rebuilt per delta.  Dominance pruning never changes
    the result: only a lower-index, componentwise-cheaper plan with a
    positive computed total prunes, and IEEE monotonicity of the whole
    evaluation chain guarantees the pruned plan never strictly beats its
    dominator at any vertex. *)

open Qsens_linalg

type t

val max_dim : int
(** Largest supported dimension (the tables hold [2^dim] entries per
    plan); equals {!Limits.exhaustive_max_dim}.  Beyond it, callers move
    to the branch-and-bound path ({!Bnb}), and past
    {!Limits.bnb_max_dim} to the linear-fractional fallback. *)

val supported : dim:int -> bool
(** [supported ~dim] — whether {!build} accepts this dimension. *)

val build :
  ?pool:Qsens_parallel.Pool.t ->
  ?prune:bool ->
  plans:Vec.t array ->
  initial:Vec.t ->
  center:Vec.t ->
  unit ->
  t
(** [build ~plans ~initial ~center ()] precomputes the per-plan subset-sum
    tables for boxes [Box.around center ~delta] at any [delta >= 1].
    [prune] (default true) drops dominated plans (Section 4.4) before the
    tables are built — result-identical by the determinism contract.
    With [?pool] the per-plan table fills run across domains (each plan's
    table is a disjoint slice, results bit-identical to sequential).

    Requires at least one plan, [supported ~dim:(Vec.dim center)],
    componentwise positive [center], and nonnegative [plans]/[initial];
    raises [Invalid_argument] otherwise. *)

val rebind : t -> initial:Vec.t -> t
(** [rebind t ~initial] is a sweep for the same plans, center and box
    family but a different initial plan — sharing the per-plan
    subset-sum tables, kept set and degenerate flags (which depend only
    on plans and center) and recomputing just the numerator side.
    Bit-identical to [build ~plans ~initial ~center ()] at a fraction of
    its cost; minimax-regret selection evaluates every candidate from
    one build this way.  Raises [Invalid_argument] on dimension mismatch
    or a negative component. *)

val bytes : t -> int
(** Resident size in bytes, computed from the table dimensions (8 bytes
    per unboxed entry plus per-field overhead) — the honest [size_of]
    for the server's byte-budgeted caches; no marshalling involved. *)

val eval : ?budget:Qsens_budget.Budget.t -> t -> delta:float -> float * int
(** [eval t ~delta] is [(gtc, pattern)]: the worst-case GTC over
    [Box.around center ~delta] and the sign pattern of an attaining
    vertex ([Box.vertex box pattern]).  Ties break to the lowest
    (plan index, pattern) pair; NaN ratios are skipped.  [pattern = -1]
    means every plan was degenerate (plan and initial both everywhere
    zero): [gtc] is NaN and no vertex attains it — callers report the box
    center, as the fractional path does.  Raises [Invalid_argument] if
    [delta < 1].

    At [delta = 1] the box collapses to its center — every pattern names
    the same vertex up to summation order — so only pattern 0, the
    ascending scan's tie-winner, is evaluated.  {!Bnb.eval} applies the
    same shortcut, keeping the two paths bit-identical there too.

    With [?budget], each vertex about to be scanned charges one unit
    (a plan row at a time) and exhaustion raises
    {!Qsens_budget.Budget.Exhausted} — the cooperative checkpoint the
    graceful-degradation dispatchers rely on.  Budget checks never touch
    the float pipeline: a surviving eval is bit-identical to an
    unbudgeted one. *)

val vertex_value : delta:float -> inv:float -> float -> float -> float
(** [vertex_value ~delta ~inv a b] is [(delta *. a) +. (b *. inv)] — the
    vertex cost [delta*A + B/delta] with [inv = 1/delta], in exactly two
    roundings.  (Not [Float.fma]: without flambda that is a C call whose
    overhead dominates the unboxed grid scan.)  Exposed so tests and
    callers reproduce the kernel's exact bits. *)

(** Reusable buffer for {!eval_grid}'s hoisted numerator table; grows to
    the largest pattern count ever evaluated, then is reused.
    Single-owner mutable state — never share one across domains. *)
module Scratch : sig
  type t

  val create : unit -> t
end

val eval_grid :
  ?scratch:Scratch.t ->
  t ->
  deltas:float array ->
  gtc:floatarray ->
  patterns:int array ->
  unit
(** [eval_grid t ~deltas ~gtc ~patterns] evaluates the whole delta grid,
    writing [eval t ~delta:deltas.(i)] into [gtc.(i)]/[patterns.(i)] —
    bit-identical to per-point {!eval} (including the [delta = 1]
    shortcut, tie-breaking and the degenerate NaN contract), at roughly
    half the FMA count: the numerator vertex values are plan-independent
    and are hoisted into the scratch once per delta instead of
    recomputed per kept plan.  Steady state (warm scratch, caller-owned
    buffers) allocates zero minor-heap words per grid point — the
    figure BENCH_kernel.json records and CI gates on.  No budget: the
    degradation ladder uses per-point {!eval}.  Raises
    [Invalid_argument] if a delta is below 1 or a buffer is shorter
    than [deltas]. *)

(** {2 Introspection} (golden tests, diagnostics)

    [plan] indices refer to the original [plans] array; asking for a
    pruned plan raises [Invalid_argument]. *)

val dim : t -> int

val num_patterns : t -> int
(** [2^dim]: sign patterns per plan. *)

val kept : t -> int array
(** Original indices of the plans that survived pruning, ascending. *)

val center : t -> Vec.t

val plan_a : t -> plan:int -> pattern:int -> float
(** [A_s]: the subset sum of [u_i * c_i] over the set bits of
    [pattern]. *)

val plan_b : t -> plan:int -> pattern:int -> float
(** [B_s]: the complementary subset sum (cleared bits of [pattern]). *)

val initial_a : t -> pattern:int -> float

val initial_b : t -> pattern:int -> float

(** {2 Branch-and-bound evaluation}

    The same worst-case argmax as {!eval}, computed without the [2^dim]
    subset-sum tables: per delta, every kept plan becomes a
    {!Qsens_geom.Vertex_enum.Bnb} search whose suffix bounds come from
    ascending prefix sums of the plan weights (DESIGN.md section 12).
    Every surviving leaf re-derives the exact {!eval} ratio — ascending
    partial sums on both sides through {!vertex_value} — so wherever both
    paths are defined ([dim <= max_dim]) the results are bit-identical,
    including tie-breaking, degenerate-plan handling and the [delta = 1]
    shortcut. *)
module Bnb : sig
  type t

  val max_dim : int
  (** Largest supported dimension; equals {!Limits.bnb_max_dim}. *)

  val supported : dim:int -> bool

  val build :
    ?prune:bool ->
    plans:Vec.t array ->
    initial:Vec.t ->
    center:Vec.t ->
    unit ->
    t
  (** Same validation, dominance pruning and degenerate bookkeeping as
      the exhaustive {!build}, but only O(plans * dim) state: packed
      weights and their ascending prefix sums.  Raises
      [Invalid_argument] under the same conditions, with the dimension
      gate at {!max_dim}. *)

  val rebind : t -> initial:Vec.t -> t
  (** As the exhaustive [rebind]: same plans, center and prefix-sum
      tables, different initial — bit-identical to a fresh {!build}
      with that initial.  Recomputes the numerator prefix sums and the
      bitwise [eq]/[pinned]/[identical] tables only. *)

  val bytes : t -> int
  (** Resident size in bytes from the table dimensions; the [size_of]
      for the server's branch-and-bound cache. *)

  (** Reusable node-pool state for sequential searches: flat unboxed
      spec tables (refilled in place per delta), the preallocated DFS
      stack, and the stats record.  A scratch binds lazily to the
      search it is passed with (rebinding when handed a different one),
      so sweeping a grid against one search allocates nothing per
      point beyond the result pair.  Single-owner mutable state —
      never share one across domains, and never store one inside a
      server-cached value. *)
  module Scratch : sig
    type t

    val create : unit -> t
  end

  val eval :
    ?pool:Qsens_parallel.Pool.t ->
    ?budget:Qsens_budget.Budget.t ->
    ?scratch:Scratch.t ->
    t ->
    delta:float ->
    float * int
  (** Bit-identical to the exhaustive [eval] (same [(gtc, pattern)],
      same ties, same [pattern = -1] degenerate contract), for any pool
      size.  With [?pool] the top branch prefixes of each plan's search
      shard across domains.  With [?budget] every visited search node
      charges one unit and exhaustion raises
      {!Qsens_budget.Budget.Exhausted}; a budgeted search runs
      sequentially (see {!Qsens_geom.Vertex_enum.Bnb.search}) so the
      trip point is deterministic. *)

  val eval_with_stats :
    ?pool:Qsens_parallel.Pool.t ->
    ?budget:Qsens_budget.Budget.t ->
    ?scratch:Scratch.t ->
    t ->
    delta:float ->
    (float * int) * (int * int)
  (** [eval] plus [(nodes, leaves)] visited by the search — the honesty
      counters behind BENCH_highdim.json.  Deterministic for a fixed
      pool size; pooled runs visit more nodes because the incumbent does
      not travel between shards.

      With [?scratch], sequential searches (a budget present, or no
      pool/a one-domain pool) run on the node-pool engine
      ({!Qsens_geom.Vertex_enum.Bnb.Flat}): spec tables are refilled in
      place per delta and the descent allocates nothing per node.
      Results and budget trip points are bit-identical to the classic
      engine; multi-domain unbudgeted searches ignore the scratch and
      take the pooled path unchanged. *)

  (** {3 Introspection} *)

  val dim : t -> int

  val kept : t -> int array
  (** Original indices of the plans that survived pruning, ascending. *)

  val center : t -> Vec.t
end
