(** Separable delta-sweep cache for the worst-case analysis.

    By Observation 2 the worst-case global relative cost over the box
    [[c_i/delta, c_i*delta]^m] is attained at a box vertex.  A vertex is a
    sign pattern [s] — component [i] sits at [c_i*delta] when bit [i] of
    the pattern is set, at [c_i/delta] otherwise — so a plan's cost there
    separates as

    {[ U . C(delta) = delta * A_s(U) + (1/delta) * B_s(U) ]}

    with [A_s = sum over set bits of u_i*c_i] and [B_s] the complementary
    sum.  The [A]/[B] tables depend only on the plan set and the box
    {e center}, never on [delta]: build them once per curve, then every
    grid point costs two fused multiply-adds per (plan, vertex) instead of
    a fresh vertex enumeration with full dot products.

    One subset-sum table [S] per plan stores both halves:
    [A_s = S(pattern)] and [B_s = S(complement of pattern)].

    {2 Determinism contract}

    Subset sums accumulate in ascending component-index order (the
    highest-bit recurrence), vertex values use one shared
    [fma delta a (b * (1/delta))] with [1/delta] computed once per
    [eval], and the flat argmax scans plans in ascending original index
    and patterns in ascending order with strict improvement — so results
    are bit-identical for any pool size, and identical whether the tables
    are built once or rebuilt per delta.  Dominance pruning never changes
    the result: only a lower-index, componentwise-cheaper plan with a
    positive computed total prunes, and IEEE monotonicity of the whole
    evaluation chain guarantees the pruned plan never strictly beats its
    dominator at any vertex. *)

open Qsens_linalg

type t

val max_dim : int
(** Largest supported dimension (the tables hold [2^dim] entries per
    plan); equals {!Limits.exhaustive_max_dim}.  Beyond it, callers move
    to the branch-and-bound path ({!Bnb}), and past
    {!Limits.bnb_max_dim} to the linear-fractional fallback. *)

val supported : dim:int -> bool
(** [supported ~dim] — whether {!build} accepts this dimension. *)

val build :
  ?pool:Qsens_parallel.Pool.t ->
  ?prune:bool ->
  plans:Vec.t array ->
  initial:Vec.t ->
  center:Vec.t ->
  unit ->
  t
(** [build ~plans ~initial ~center ()] precomputes the per-plan subset-sum
    tables for boxes [Box.around center ~delta] at any [delta >= 1].
    [prune] (default true) drops dominated plans (Section 4.4) before the
    tables are built — result-identical by the determinism contract.
    With [?pool] the per-plan table fills run across domains (each plan's
    table is a disjoint slice, results bit-identical to sequential).

    Requires at least one plan, [supported ~dim:(Vec.dim center)],
    componentwise positive [center], and nonnegative [plans]/[initial];
    raises [Invalid_argument] otherwise. *)

val eval : ?budget:Qsens_budget.Budget.t -> t -> delta:float -> float * int
(** [eval t ~delta] is [(gtc, pattern)]: the worst-case GTC over
    [Box.around center ~delta] and the sign pattern of an attaining
    vertex ([Box.vertex box pattern]).  Ties break to the lowest
    (plan index, pattern) pair; NaN ratios are skipped.  [pattern = -1]
    means every plan was degenerate (plan and initial both everywhere
    zero): [gtc] is NaN and no vertex attains it — callers report the box
    center, as the fractional path does.  Raises [Invalid_argument] if
    [delta < 1].

    At [delta = 1] the box collapses to its center — every pattern names
    the same vertex up to summation order — so only pattern 0, the
    ascending scan's tie-winner, is evaluated.  {!Bnb.eval} applies the
    same shortcut, keeping the two paths bit-identical there too.

    With [?budget], each vertex about to be scanned charges one unit
    (a plan row at a time) and exhaustion raises
    {!Qsens_budget.Budget.Exhausted} — the cooperative checkpoint the
    graceful-degradation dispatchers rely on.  Budget checks never touch
    the float pipeline: a surviving eval is bit-identical to an
    unbudgeted one. *)

val vertex_value : delta:float -> inv:float -> float -> float -> float
(** [vertex_value ~delta ~inv a b] is [fma delta a (b *. inv)] — the
    vertex cost [delta*A + B/delta] with [inv = 1/delta].  Exposed so
    tests and callers reproduce the kernel's exact bits. *)

(** {2 Introspection} (golden tests, diagnostics)

    [plan] indices refer to the original [plans] array; asking for a
    pruned plan raises [Invalid_argument]. *)

val dim : t -> int

val num_patterns : t -> int
(** [2^dim]: sign patterns per plan. *)

val kept : t -> int array
(** Original indices of the plans that survived pruning, ascending. *)

val center : t -> Vec.t

val plan_a : t -> plan:int -> pattern:int -> float
(** [A_s]: the subset sum of [u_i * c_i] over the set bits of
    [pattern]. *)

val plan_b : t -> plan:int -> pattern:int -> float
(** [B_s]: the complementary subset sum (cleared bits of [pattern]). *)

val initial_a : t -> pattern:int -> float

val initial_b : t -> pattern:int -> float

(** {2 Branch-and-bound evaluation}

    The same worst-case argmax as {!eval}, computed without the [2^dim]
    subset-sum tables: per delta, every kept plan becomes a
    {!Qsens_geom.Vertex_enum.Bnb} search whose suffix bounds come from
    ascending prefix sums of the plan weights (DESIGN.md section 12).
    Every surviving leaf re-derives the exact {!eval} ratio — ascending
    partial sums on both sides through {!vertex_value} — so wherever both
    paths are defined ([dim <= max_dim]) the results are bit-identical,
    including tie-breaking, degenerate-plan handling and the [delta = 1]
    shortcut. *)
module Bnb : sig
  type t

  val max_dim : int
  (** Largest supported dimension; equals {!Limits.bnb_max_dim}. *)

  val supported : dim:int -> bool

  val build :
    ?prune:bool ->
    plans:Vec.t array ->
    initial:Vec.t ->
    center:Vec.t ->
    unit ->
    t
  (** Same validation, dominance pruning and degenerate bookkeeping as
      the exhaustive {!build}, but only O(plans * dim) state: packed
      weights and their ascending prefix sums.  Raises
      [Invalid_argument] under the same conditions, with the dimension
      gate at {!max_dim}. *)

  val eval :
    ?pool:Qsens_parallel.Pool.t ->
    ?budget:Qsens_budget.Budget.t ->
    t ->
    delta:float ->
    float * int
  (** Bit-identical to the exhaustive [eval] (same [(gtc, pattern)],
      same ties, same [pattern = -1] degenerate contract), for any pool
      size.  With [?pool] the top branch prefixes of each plan's search
      shard across domains.  With [?budget] every visited search node
      charges one unit and exhaustion raises
      {!Qsens_budget.Budget.Exhausted}; a budgeted search runs
      sequentially (see {!Qsens_geom.Vertex_enum.Bnb.search}) so the
      trip point is deterministic. *)

  val eval_with_stats :
    ?pool:Qsens_parallel.Pool.t ->
    ?budget:Qsens_budget.Budget.t ->
    t ->
    delta:float ->
    (float * int) * (int * int)
  (** [eval] plus [(nodes, leaves)] visited by the search — the honesty
      counters behind BENCH_highdim.json.  Deterministic for a fixed
      pool size; pooled runs visit more nodes because the incumbent does
      not travel between shards. *)

  (** {3 Introspection} *)

  val dim : t -> int

  val kept : t -> int array
  (** Original indices of the plans that survived pruning, ascending. *)

  val center : t -> Vec.t
end
