(* Deterministic, seeded fault injection.

   Every injection decision is a pure function of (plan seed, site name,
   per-site call counter): the injector hashes the triple with a
   SplitMix64-style mixer and derives uniforms from the hash chain.  No
   global RNG is consulted, so two runs with the same plan and the same
   per-site call sequences produce bit-identical faults and transcripts,
   regardless of how calls to *different* sites interleave (e.g. under
   the domain pool). *)

module Obs = Qsens_obs.Obs

let m_failures = Obs.counter ~help:"injected call failures" "faults.failures"
let m_timeouts = Obs.counter ~help:"injected call timeouts" "faults.timeouts"

let m_evictions =
  Obs.counter ~help:"injected cache evictions" "faults.evictions"

let m_noised = Obs.counter ~help:"observations perturbed by noise" "faults.noised"
let m_delayed = Obs.counter ~help:"calls that accrued latency" "faults.delayed"

let m_retry_backoffs =
  Obs.counter ~help:"retry backoffs taken" "retry.backoffs"

let m_retry_giveups =
  Obs.counter ~help:"retries exhausted or past deadline" "retry.giveups"

let m_breaker_trips = Obs.counter ~help:"circuit breaker trips" "breaker.trips"

(* ------------------------------------------------------------------ *)
(* Models and plans *)

type model =
  | Failure of float
  | Timeout of float
  | Cache_loss of float
  | Additive_noise of float
  | Multiplicative_noise of float
  | Latency of { mean : float; jitter : float }

type plan = { name : string; seed : int; models : model list }

let validate_model = function
  | Failure p | Timeout p | Cache_loss p ->
      if not (p >= 0. && p <= 1.) then
        invalid_arg "Fault.plan: probability must be in [0, 1]"
  | Additive_noise s | Multiplicative_noise s ->
      if not (s >= 0.) then invalid_arg "Fault.plan: sigma must be >= 0"
  | Latency { mean; jitter } ->
      if not (mean >= 0. && jitter >= 0.) then
        invalid_arg "Fault.plan: latency mean and jitter must be >= 0"

let plan ?(name = "anonymous") ?(seed = 0) models =
  List.iter validate_model models;
  { name; seed; models }

(* The canned adversarial conditions of the acceptance experiment: 5%
   probe failure and 2% multiplicative noise, seed 7. *)
let canned =
  { name = "canned"; seed = 7;
    models = [ Failure 0.05; Multiplicative_noise 0.02 ] }

let model_to_string = function
  | Failure p -> Printf.sprintf "fail=%g" p
  | Timeout p -> Printf.sprintf "timeout=%g" p
  | Cache_loss p -> Printf.sprintf "cacheloss=%g" p
  | Additive_noise s -> Printf.sprintf "add=%g" s
  | Multiplicative_noise s -> Printf.sprintf "mul=%g" s
  | Latency { mean; jitter } ->
      Printf.sprintf "latency=%g,jitter=%g" mean jitter

let plan_to_string p =
  String.concat ","
    (List.map model_to_string p.models @ [ Printf.sprintf "seed=%d" p.seed ])

let plan_of_string spec =
  let spec = String.trim spec in
  if spec = "canned" then Ok canned
  else if spec = "none" then Ok { name = "none"; seed = 0; models = [] }
  else begin
    let parts =
      List.filter (fun s -> s <> "")
        (List.map String.trim (String.split_on_char ',' spec))
    in
    let parse_kv part =
      match String.index_opt part '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" part)
      | Some i ->
          Ok
            ( String.sub part 0 i,
              String.sub part (i + 1) (String.length part - i - 1) )
    in
    let float_of k v =
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%s: not a number: %S" k v)
    in
    let rec go parts ~seed ~jitter acc =
      match parts with
      | [] ->
          let models =
            List.rev_map
              (function
                | Latency l -> Latency { l with jitter } | m -> m)
              acc
          in
          (match List.iter validate_model models with
          | () -> Ok { name = spec; seed; models }
          | exception Invalid_argument m -> Error m)
      | part :: rest -> (
          match parse_kv part with
          | Error e -> Error e
          | Ok (k, v) -> (
              let num f =
                match float_of k v with
                | Ok x -> go rest ~seed ~jitter (f x :: acc)
                | Error e -> Error e
              in
              match k with
              | "fail" -> num (fun p -> Failure p)
              | "timeout" -> num (fun p -> Timeout p)
              | "cacheloss" -> num (fun p -> Cache_loss p)
              | "add" -> num (fun s -> Additive_noise s)
              | "mul" -> num (fun s -> Multiplicative_noise s)
              | "latency" ->
                  num (fun mean -> Latency { mean; jitter = 0. })
              | "jitter" -> (
                  match float_of k v with
                  | Ok j -> go rest ~seed ~jitter:j acc
                  | Error e -> Error e)
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some s -> go rest ~seed:s ~jitter acc
                  | None -> Error (Printf.sprintf "seed: not an int: %S" v))
              | _ -> Error (Printf.sprintf "unknown fault key %S" k)))
    in
    go parts ~seed:0 ~jitter:0. []
  end

(* ------------------------------------------------------------------ *)
(* Typed errors *)

type error =
  | Probe_failed of { site : string; attempts : int }
  | Probe_timeout of { site : string; attempts : int }
  | Unknown_signature of string
  | Too_few_observations of { got : int; need : int }
  | Singular_system
  | Circuit_open of { site : string; failures : int }

let error_to_string = function
  | Probe_failed { site; attempts } ->
      Printf.sprintf "probe failed at %s after %d attempt(s)" site attempts
  | Probe_timeout { site; attempts } ->
      Printf.sprintf "probe deadline exceeded at %s after %d attempt(s)" site
        attempts
  | Unknown_signature s ->
      Printf.sprintf "signature %s unknown to the narrow interface" s
  | Too_few_observations { got; need } ->
      Printf.sprintf "too few observations (%d of the %d required)" got need
  | Singular_system -> "observations do not span the space (singular system)"
  | Circuit_open { site; failures } ->
      Printf.sprintf "circuit breaker open at %s after %d consecutive failure(s)"
        site failures

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* Transient errors are worth retrying; structural errors are not. *)
let transient = function
  | Probe_failed _ | Probe_timeout _ | Unknown_signature _ -> true
  | Too_few_observations _ | Singular_system | Circuit_open _ -> false

(* ------------------------------------------------------------------ *)
(* Deterministic hashing: SplitMix64 over (seed, site, counter) *)

let splitmix64 z =
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* FNV-1a over the site name: stable across runs and OCaml versions,
   unlike Hashtbl.hash whose algorithm is unspecified. *)
let site_hash s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

(* A short deterministic stream for one injection point. *)
type stream = { mutable state : int64 }

let stream ~seed ~site ~counter =
  let z =
    Int64.logxor
      (Int64.logxor (Int64.of_int seed) (site_hash site))
      (Int64.mul (Int64.of_int counter) 0xD1342543DE82EF95L)
  in
  { state = splitmix64 z }

let next_uniform st =
  st.state <- splitmix64 st.state;
  (* 53 high bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical st.state 11) *. 0x1p-53

(* Box-Muller; consumes two uniforms. *)
let next_gaussian st =
  let u1 = Float.max 1e-300 (next_uniform st) in
  let u2 = next_uniform st in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let uniform ~seed ~site ~counter = next_uniform (stream ~seed ~site ~counter)

(* ------------------------------------------------------------------ *)
(* Injector: per-site counters + transcript *)

type effect =
  | Failed
  | Timed_out
  | Evicted
  | Noised of float  (** the delta applied to the observed value *)
  | Delayed of float  (** simulated latency, in cost-model time units *)

type event = { site : string; index : int; effect : effect }

type injector = {
  plan : plan;
  counters : (string, int ref) Hashtbl.t;
  mutable events : event list;  (* newest first *)
  mutable latency_total : float;
}

let injector plan =
  { plan; counters = Hashtbl.create 8; events = []; latency_total = 0. }

let injector_plan inj = inj.plan

let tick inj site =
  match Hashtbl.find_opt inj.counters site with
  | Some r ->
      incr r;
      !r
  | None ->
      Hashtbl.add inj.counters site (ref 0);
      0

let record inj site index effect =
  (match effect with
  | Failed -> Obs.add m_failures 1
  | Timed_out -> Obs.add m_timeouts 1
  | Evicted -> Obs.add m_evictions 1
  | Noised _ -> Obs.add m_noised 1
  | Delayed _ -> Obs.add m_delayed 1);
  inj.events <- { site; index; effect } :: inj.events

let transcript inj = List.rev inj.events

let latency_total inj = inj.latency_total

let reset inj =
  Hashtbl.reset inj.counters;
  inj.events <- [];
  inj.latency_total <- 0.

(* Count events per effect kind, deterministically ordered. *)
let summary inj =
  let bump key acc =
    match List.assoc_opt key acc with
    | Some n -> (key, n + 1) :: List.remove_assoc key acc
    | None -> (key, 1) :: acc
  in
  let key = function
    | Failed -> "failures"
    | Timed_out -> "timeouts"
    | Evicted -> "cache evictions"
    | Noised _ -> "noised observations"
    | Delayed _ -> "delayed calls"
  in
  List.fold_left (fun acc e -> bump (key e.effect) acc) [] inj.events
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Applying a plan at a call site *)

(* One injection pass over an observed value.  Models apply in plan
   order; a Failure or Timeout aborts the call (the value is lost, as a
   failed RPC loses its response), noise perturbs the value, latency
   accrues simulated time.  Cache_loss is not interpreted here — it only
   makes sense for caching callers, which consult {!evicts}. *)
let apply inj ~site value =
  let index = tick inj site in
  let st = stream ~seed:inj.plan.seed ~site ~counter:index in
  let rec go value latency = function
    | [] ->
        if latency > 0. then begin
          inj.latency_total <- inj.latency_total +. latency;
          record inj site index (Delayed latency)
        end;
        Ok value
    | Failure p :: rest ->
        if next_uniform st < p then begin
          record inj site index Failed;
          Error `Failed
        end
        else go value latency rest
    | Timeout p :: rest ->
        if next_uniform st < p then begin
          record inj site index Timed_out;
          Error `Timed_out
        end
        else go value latency rest
    | Cache_loss _ :: rest ->
        (* interpreted by [evicts]; consume no randomness here so the
           draw sequence matches the model list either way *)
        go value latency rest
    | Additive_noise sigma :: rest ->
        let d = sigma *. next_gaussian st in
        if not (Float.equal d 0.) then record inj site index (Noised d);
        go (value +. d) latency rest
    | Multiplicative_noise sigma :: rest ->
        let d = value *. sigma *. next_gaussian st in
        if not (Float.equal d 0.) then record inj site index (Noised d);
        go (value +. d) latency rest
    | Latency { mean; jitter } :: rest ->
        let u = next_uniform st in
        let delay = Float.max 0. (mean *. (1. +. (jitter *. ((2. *. u) -. 1.)))) in
        go value (latency +. delay) rest
  in
  go value 0. inj.plan.models

let apply_opt inj ~site value =
  match inj with None -> Ok value | Some inj -> apply inj ~site value

(* Should this call lose its cached entry?  Consulted by caching layers
   (the narrow interface's plan cache) before the lookup. *)
let evicts inj ~site =
  let p =
    List.fold_left
      (fun acc -> function Cache_loss p -> Float.max acc p | _ -> acc)
      0. inj.plan.models
  in
  if p <= 0. then false
  else begin
    let index = tick inj (site ^ "#evict") in
    let hit = uniform ~seed:inj.plan.seed ~site:(site ^ "#evict") ~counter:index < p in
    if hit then record inj site index Evicted;
    hit
  end

let evicts_opt inj ~site =
  match inj with None -> false | Some inj -> evicts inj ~site

(* Device-flavoured interpretation: a failure or timeout on a storage
   device shows up as the driver retrying the I/O (the page still
   arrives), and the latency models as simulated service time.  Returns
   whether the I/O was retried and the latency it accrued. *)
let io_outcome inj ~site =
  let index = tick inj site in
  let st = stream ~seed:inj.plan.seed ~site ~counter:index in
  let retried = ref false and latency = ref 0. in
  List.iter
    (fun model ->
      match model with
      | Failure p | Timeout p ->
          if next_uniform st < p then begin
            retried := true;
            record inj site index
              (match model with Timeout _ -> Timed_out | _ -> Failed)
          end
      | Cache_loss _ -> ()
      | Additive_noise sigma ->
          latency := !latency +. Float.abs (sigma *. next_gaussian st)
      | Multiplicative_noise _ ->
          (* meaningless for counting devices; consume the draw so the
             stream stays aligned with [apply] *)
          ignore (next_gaussian st)
      | Latency { mean; jitter } ->
          let u = next_uniform st in
          latency :=
            !latency
            +. Float.max 0. (mean *. (1. +. (jitter *. ((2. *. u) -. 1.)))))
    inj.plan.models;
  if !latency > 0. then begin
    inj.latency_total <- inj.latency_total +. !latency;
    record inj site index (Delayed !latency)
  end;
  (!retried, !latency)

(* ------------------------------------------------------------------ *)
(* Retry with seeded exponential backoff + jitter and a deadline *)

module Retry = struct
  type policy = {
    max_attempts : int;
    base_backoff : float;
    multiplier : float;
    jitter : float;
    full_jitter : bool;
    deadline : float;
  }

  let none =
    { max_attempts = 1; base_backoff = 0.; multiplier = 2.; jitter = 0.;
      full_jitter = false; deadline = Float.infinity }

  let default =
    { max_attempts = 4; base_backoff = 1.; multiplier = 2.; jitter = 0.5;
      full_jitter = false; deadline = 1000. }

  let with_attempts attempts = function
    | Probe_failed { site; _ } -> Probe_failed { site; attempts }
    | Probe_timeout { site; _ } -> Probe_timeout { site; attempts }
    | e -> e

  (* The virtual sleep before attempt [attempt + 1].  [cap] is the
     un-jittered exponential schedule; full jitter draws uniformly from
     [0, cap] (the AWS "full jitter" scheme — decorrelates retry storms
     while never exceeding the cap), the scaled mode stretches the cap by
     a factor in [1, 1 + jitter].  Both draw from the same seeded stream,
     so a schedule is a pure function of (policy, seed, site). *)
  let backoff_for policy ~seed ~site ~attempt =
    let u = uniform ~seed ~site:(site ^ "#backoff") ~counter:attempt in
    let cap =
      policy.base_backoff *. (policy.multiplier ** Float.of_int (attempt - 1))
    in
    if policy.full_jitter then cap *. u
    else cap *. (1. +. (policy.jitter *. u))

  (* [run policy ~seed ~site f] calls [f ~attempt] (1-based) until it
     succeeds, fails fatally, exhausts [max_attempts], or blows the
     backoff deadline.  Time is virtual: the accumulated backoff is
     checked against [deadline], making timeouts deterministic. *)
  let run policy ~seed ~site f =
    if policy.max_attempts < 1 then
      invalid_arg "Fault.Retry.run: max_attempts must be >= 1";
    let rec go attempt clock =
      match f ~attempt with
      | Ok v -> Ok v
      | Error e when not (transient e) -> Error e
      | Error e ->
          if attempt >= policy.max_attempts then begin
            Obs.add m_retry_giveups 1;
            Error (with_attempts attempt e)
          end
          else begin
            Obs.add m_retry_backoffs 1;
            let backoff = backoff_for policy ~seed ~site ~attempt in
            let clock = clock +. backoff in
            if clock > policy.deadline then begin
              Obs.add m_retry_giveups 1;
              Error (Probe_timeout { site; attempts = attempt })
            end
            else go (attempt + 1) clock
          end
    in
    go 1 0.
end

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

module Breaker = struct
  type state = Closed | Open | Half_open

  type t = {
    threshold : int;
    cooldown : int;
    mutable state : state;
    mutable consecutive : int;
    mutable remaining : int;  (* rejected calls left while Open *)
    mutable trips : int;
  }

  let create ?(threshold = 5) ?(cooldown = 8) () =
    if threshold < 1 then invalid_arg "Fault.Breaker.create: threshold < 1";
    if cooldown < 1 then invalid_arg "Fault.Breaker.create: cooldown < 1";
    { threshold; cooldown; state = Closed; consecutive = 0; remaining = 0;
      trips = 0 }

  let state t = t.state
  let consecutive_failures t = t.consecutive
  let trips t = t.trips

  (* May this call proceed?  While Open, each denied call counts toward
     the cooldown; once it elapses the breaker goes Half_open and lets
     one trial call through. *)
  let acquire t =
    match t.state with
    | Closed | Half_open -> true
    | Open ->
        t.remaining <- t.remaining - 1;
        if t.remaining <= 0 then begin
          t.state <- Half_open;
          true
        end
        else false

  let trip t =
    t.state <- Open;
    t.remaining <- t.cooldown;
    t.trips <- t.trips + 1;
    Obs.add m_breaker_trips 1;
    Obs.instant "breaker.trip"

  let record_success t =
    t.consecutive <- 0;
    match t.state with Half_open -> t.state <- Closed | _ -> ()

  let record_failure t =
    t.consecutive <- t.consecutive + 1;
    match t.state with
    | Half_open -> trip t
    | Closed -> if t.consecutive >= t.threshold then trip t
    | Open -> ()
end
