(** Deterministic, seeded fault injection for the probing pipeline.

    The paper's calibration story (Section 6.1.1) assumes a narrow
    optimizer interface that always answers, and answers exactly.  Real
    systems do neither: probes fail or time out, measured costs carry
    noise, devices misbehave.  This module provides the adversary — a
    composable, {e named} fault plan — and the vocabulary the resilient
    pipeline speaks: typed errors, retry policies with seeded
    exponential backoff, and a circuit breaker.

    {2 Determinism}

    Every injection decision is a pure function of
    [(plan seed, site name, per-site call counter)], hashed with a
    SplitMix64-style mixer.  No global RNG is consulted: two runs with
    the same plan and the same per-site call sequences inject
    bit-identical faults and produce identical {!transcript}s, even when
    calls to different sites interleave differently (e.g. under the
    domain pool). *)

(** {1 Fault models and plans} *)

type model =
  | Failure of float  (** probability the call fails outright *)
  | Timeout of float  (** probability the call times out *)
  | Cache_loss of float
      (** probability a caching caller loses the relevant entry before
          the call (see {!evicts}); models plan-cache eviction in the
          narrow interface *)
  | Additive_noise of float  (** Gaussian sigma added to the value *)
  | Multiplicative_noise of float
      (** relative Gaussian sigma: [v * (1 + sigma * g)] *)
  | Latency of { mean : float; jitter : float }
      (** simulated service latency per call, [mean * (1 +- jitter)] *)

type plan = { name : string; seed : int; models : model list }

val plan : ?name:string -> ?seed:int -> model list -> plan
(** Validates ranges: probabilities in [[0, 1]], sigmas and latencies
    non-negative.  Raises [Invalid_argument] otherwise. *)

val canned : plan
(** The acceptance experiment's adversary: 5% probe failure and 2%
    multiplicative noise, seed 7. *)

val plan_of_string : string -> (plan, string) result
(** Parses a [--faults] spec: the names ["canned"] and ["none"], or a
    comma-separated list of [fail=P], [timeout=P], [cacheloss=P],
    [add=SIGMA], [mul=SIGMA], [latency=MEAN], [jitter=J] (applies to
    [latency]), [seed=N].  Example: ["fail=0.05,mul=0.02,seed=7"]. *)

val plan_to_string : plan -> string

(** {1 Typed errors}

    The error vocabulary shared by the whole probing pipeline —
    replacing the silent [option] that conflated "too few
    observations", "singular system" and "interface refusal". *)

type error =
  | Probe_failed of { site : string; attempts : int }
      (** the call failed (injected or genuine), after [attempts] tries *)
  | Probe_timeout of { site : string; attempts : int }
      (** the call or its retry budget exceeded the deadline *)
  | Unknown_signature of string
      (** narrow-interface cache miss: the plan signature is not (or no
          longer) cached.  Distinct from failure so callers can
          re-explain instead of dropping the sample. *)
  | Too_few_observations of { got : int; need : int }
      (** not enough surviving observations to determine the system *)
  | Singular_system  (** observations do not span the space *)
  | Circuit_open of { site : string; failures : int }
      (** the circuit breaker is refusing calls *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val transient : error -> bool
(** Whether retrying can help: true for failures, timeouts and cache
    misses; false for structural errors (too few observations, singular
    system, open circuit). *)

(** {1 Injectors} *)

type effect =
  | Failed
  | Timed_out
  | Evicted
  | Noised of float  (** delta applied to the observed value *)
  | Delayed of float  (** simulated latency accrued *)

type event = { site : string; index : int; effect : effect }

type injector

val injector : plan -> injector
val injector_plan : injector -> plan

val apply :
  injector -> site:string -> float -> (float, [ `Failed | `Timed_out ]) result
(** Run one observed value through the plan at the given site.  Models
    apply in plan order: [Failure]/[Timeout] abort the call, noise
    perturbs the value, [Latency] accrues simulated time.  Consumes one
    call index at the site. *)

val apply_opt :
  injector option ->
  site:string ->
  float ->
  (float, [ `Failed | `Timed_out ]) result
(** [apply_opt None] is the identity — the fault-free fast path. *)

val evicts : injector -> site:string -> bool
(** Whether a [Cache_loss] model fires for this call; caching callers
    consult it before their lookup.  Draws from a site-suffixed counter
    so interleaving with {!apply} cannot shift either stream. *)

val evicts_opt : injector option -> site:string -> bool

val io_outcome : injector -> site:string -> bool * float
(** Device-flavoured interpretation for {!Qsens_engine.Sim_device}:
    failures/timeouts mean the driver {e retried} the I/O (first
    component true), noise and [Latency] accrue simulated service time
    (second component). *)

val transcript : injector -> event list
(** All injected events, in chronological order.  Two runs under the
    same plan and call sequences produce equal transcripts — the
    determinism contract the tests assert. *)

val summary : injector -> (string * int) list
(** Event counts by kind, sorted by kind name. *)

val latency_total : injector -> float

val reset : injector -> unit
(** Forget counters, events and latency — as if freshly created. *)

val uniform : seed:int -> site:string -> counter:int -> float
(** The raw deterministic uniform in [[0, 1)] behind every draw;
    exposed for seeded jitter elsewhere (retry backoff). *)

(** {1 Retry with seeded exponential backoff} *)

module Retry : sig
  type policy = {
    max_attempts : int;  (** total attempts, including the first *)
    base_backoff : float;  (** virtual time units before attempt 2 *)
    multiplier : float;  (** exponential growth per attempt *)
    jitter : float;
        (** uniform jitter fraction on each backoff, drawn from the
            deterministic stream; ignored under [full_jitter] *)
    full_jitter : bool;
        (** when set, each backoff is drawn uniformly from [0, cap]
            where [cap = base_backoff * multiplier^(attempt-1)] — the
            AWS "full jitter" scheme, which decorrelates retry storms
            while never exceeding the un-jittered exponential cap *)
    deadline : float;
        (** per-probe budget on accumulated backoff; exceeding it yields
            [Probe_timeout] *)
  }

  val none : policy
  (** One attempt, no backoff — the legacy behaviour. *)

  val default : policy
  (** 4 attempts, backoff 1, 2, 4 (x1..1.5 jitter), deadline 1000. *)

  val backoff_for : policy -> seed:int -> site:string -> attempt:int -> float
  (** The virtual sleep {!run} inserts after failed attempt [attempt]
      (1-based).  A pure function of its arguments — the whole schedule
      is reproducible, and under [full_jitter] bounded above by the
      un-jittered exponential cap. *)

  val run :
    policy ->
    seed:int ->
    site:string ->
    (attempt:int -> ('a, error) result) ->
    ('a, error) result
  (** Calls the body with [attempt] = 1, 2, ... until it succeeds,
      returns a non-{!transient} error, exhausts [max_attempts] (the
      final error carries the attempt count), or the accumulated virtual
      backoff exceeds [deadline] ([Probe_timeout]).  Fully
      deterministic: jitter comes from {!uniform} keyed by [seed],
      [site] and the attempt number. *)
end

(** {1 Circuit breaker}

    Trips to [Open] after [threshold] consecutive failures; while open,
    refuses calls for [cooldown] acquisitions, then goes [Half_open] and
    admits one trial call — success closes the circuit, failure re-opens
    it.  Counting acquisitions instead of wall-clock time keeps the
    state machine deterministic. *)

module Breaker : sig
  type state = Closed | Open | Half_open

  type t

  val create : ?threshold:int -> ?cooldown:int -> unit -> t
  (** Defaults: [threshold = 5] consecutive failures, [cooldown = 8]
      refused calls. *)

  val state : t -> state

  val acquire : t -> bool
  (** Whether the next call may proceed; advances the cooldown while
      [Open]. *)

  val record_success : t -> unit
  val record_failure : t -> unit
  val consecutive_failures : t -> int

  val trips : t -> int
  (** How many times the breaker has opened. *)
end
