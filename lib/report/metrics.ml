module Obs = Qsens_obs.Obs

let kind_name = function
  | Obs.Counter -> "counter"
  | Obs.Gauge -> "gauge"
  | Obs.Histogram -> "histogram"

let value_cell = function
  | Obs.Vcount n -> string_of_int n
  | Obs.Vgauge v -> Table.cell_f v
  | Obs.Vhist h ->
      let mean = if h.n > 0 then h.sum /. Float.of_int h.n else 0. in
      Printf.sprintf "n=%d mean=%s" h.n (Table.cell_f mean)

let detail_cell m v =
  match v with
  | Obs.Vhist h ->
      String.concat " "
        (List.map
           (fun (b, c) ->
             Printf.sprintf "[%s,%s):%d"
               (Table.cell_f (Obs.bucket_lo b))
               (Table.cell_f (Obs.bucket_hi b))
               c)
           h.buckets)
  | Obs.Vcount _ | Obs.Vgauge _ -> Obs.help m

let summary_table () =
  let table =
    Table.make ~header:[ "metric"; "kind"; "value"; "detail" ]
  in
  List.iter
    (fun (m, v) ->
      Table.add_row table
        [ Obs.name m; kind_name (Obs.kind m); value_cell v; detail_cell m v ])
    (Obs.snapshot ());
  table

let print ?out () =
  let table = summary_table () in
  Table.print ?out table
