(** ASCII rendering of the [Qsens_obs] metrics snapshot (the [--metrics]
    flag): one row per metric that recorded data, merged across tracks in
    deterministic order. *)

val summary_table : unit -> Table.t
val print : ?out:out_channel -> unit -> unit
