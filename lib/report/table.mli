(** Plain-text table rendering for experiment output. *)

type t

val make : header:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] when the row width differs from the
    header. *)

val print : ?out:out_channel -> t -> unit
(** Renders with column-width alignment and a header separator. *)

val to_csv : t -> string

val cell_f : float -> string
(** Compact significant-figure formatting for numeric cells. *)
