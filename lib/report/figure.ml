open Qsens_core

(* Rows are keyed by delta *value* over the union of every series' grid:
   series computed with different [?deltas] used to be paired to the first
   series' grid by list index, silently misaligning their points. *)
let series_table series =
  let deltas =
    List.sort_uniq Float.compare
      (List.concat_map
         (fun (_, points) -> List.map (fun p -> p.Worst_case.delta) points)
         series)
  in
  let table =
    Table.make ~header:("delta" :: List.map fst series)
  in
  List.iter
    (fun delta ->
      let row =
        Table.cell_f delta
        :: List.map
             (fun (_, points) ->
               match
                 List.find_opt
                   (fun p -> Float.equal p.Worst_case.delta delta)
                   points
               with
               | Some p -> Table.cell_f p.Worst_case.gtc
               | None -> "-")
             series
      in
      Table.add_row table row)
    deltas;
  table

let ascii_plot ?(width = 72) ?(height = 24) series =
  let letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  let points =
    List.concat_map (fun (_, ps) -> ps) series
  in
  if points = [] then "(no data)\n"
  else begin
    let log10 x = Float.log10 (Float.max x 1e-12) in
    let xs = List.map (fun p -> log10 p.Worst_case.delta) points in
    let ys = List.map (fun p -> log10 p.Worst_case.gtc) points in
    let xmin = List.fold_left Float.min infinity xs
    and xmax = List.fold_left Float.max neg_infinity xs
    and ymin = List.fold_left Float.min infinity ys
    and ymax = List.fold_left Float.max neg_infinity ys in
    let xmax = if xmax -. xmin < 1e-9 then xmin +. 1. else xmax in
    let ymax = if ymax -. ymin < 1e-9 then ymin +. 1. else ymax in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun k (_, ps) ->
        let ch = letters.[k mod String.length letters] in
        List.iter
          (fun p ->
            let x = log10 p.Worst_case.delta and y = log10 p.Worst_case.gtc in
            let col =
              int_of_float
                (Float.round ((x -. xmin) /. (xmax -. xmin) *. Float.of_int (width - 1)))
            in
            let row =
              height - 1
              - int_of_float
                  (Float.round
                     ((y -. ymin) /. (ymax -. ymin) *. Float.of_int (height - 1)))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- ch)
          ps)
      series;
    let buf = Buffer.create ((width + 8) * (height + 4)) in
    Buffer.add_string buf
      (Printf.sprintf "log10(worst-case GTC): %.1f .. %.1f (vertical)\n" ymin ymax);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "   log10(delta): %.1f .. %.1f   " xmin xmax);
    List.iteri
      (fun k (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "%c=%s " letters.[k mod String.length letters] name))
      series;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

(* The three decision rules as overlayable curves: each series is the
   worst-case regret of the plan that rule picks at each delta, so the
   classic series is the ordinary worst-case GTC curve and the gap to
   the minimax series is what robust selection buys. *)
let selection_series points =
  let series pick =
    List.map
      (fun (p : Select.point) ->
        {
          Worst_case.delta = p.Select.delta;
          gtc = p.Select.regret.(pick p);
          witness = [||];
        })
      points
  in
  [
    ("classic", series (fun p -> p.Select.classic));
    ("lec", series (fun p -> p.Select.lec));
    ("minimax", series (fun p -> p.Select.minimax));
  ]

let selection_table ~signatures points =
  let name i =
    if i >= 0 && i < Array.length signatures then signatures.(i)
    else Printf.sprintf "#%d" i
  in
  let table =
    Table.make
      ~header:
        [
          "delta"; "classic"; "lec"; "minimax"; "classic wc"; "minimax wc";
          "gain";
        ]
  in
  List.iter
    (fun (p : Select.point) ->
      let classic_wc = p.Select.regret.(p.Select.classic) in
      let minimax_wc = p.Select.regret.(p.Select.minimax) in
      Table.add_row table
        [
          Table.cell_f p.Select.delta;
          name p.Select.classic;
          name p.Select.lec;
          name p.Select.minimax;
          Table.cell_f classic_wc;
          Table.cell_f minimax_wc;
          (if p.Select.minimax = p.Select.classic then "-"
           else Table.cell_f (classic_wc /. minimax_wc) ^ "x");
        ])
    points;
  table

let asymptote_summary series =
  let table = Table.make ~header:[ "query"; "regime"; "value" ] in
  List.iter
    (fun (name, points) ->
      match Worst_case.asymptote points with
      | `Bounded c ->
          Table.add_row table [ name; "bounded (Thm 2)"; Table.cell_f c ]
      | `Quadratic s ->
          Table.add_row table
            [ name; "quadratic (Thm 1)"; "gtc ~ " ^ Table.cell_f s ^ " * delta^2" ])
    series;
  table
