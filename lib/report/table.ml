type t = { header : string list; mutable rows : string list list }

let make ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

(* Non-finite values are normalized to fixed spellings: bare OCaml "inf" /
   "nan" cells misparse in spreadsheet and plotting tools reading the CSV
   export. *)
let cell_f x =
  if Float.is_nan x then "NaN"
  else if Float.equal x infinity then "Inf"
  else if Float.equal x neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e7 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let print ?(out = stdout) t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell ->
         if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    all;
  let print_row cells =
    List.iteri
      (fun i cell ->
        output_string out (if i = 0 then "" else "  ");
        output_string out cell;
        output_string out (String.make (widths.(i) - String.length cell) ' '))
      cells;
    output_char out '\n'
  in
  print_row t.header;
  let total = Array.fold_left ( + ) (2 * (ncols - 1)) widths in
  output_string out (String.make total '-');
  output_char out '\n';
  List.iter print_row rows

let to_csv t =
  let quote cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
    then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let line cells = String.concat "," (List.map quote cells) in
  String.concat "\n" (List.map line (t.header :: List.rev t.rows)) ^ "\n"
