(** Rendering of worst-case sensitivity curves (the paper's Figures 5-7)
    as data tables and ASCII log-log plots. *)

val series_table :
  (string * Qsens_core.Worst_case.point list) list -> Table.t
(** One row per delta, one column per query: the exact data series behind
    a figure. *)

val ascii_plot :
  ?width:int ->
  ?height:int ->
  (string * Qsens_core.Worst_case.point list) list ->
  string
(** A log-log character plot of all series overlaid (each series drawn
    with its own letter), for eyeballing curve shapes in a terminal. *)

val asymptote_summary :
  (string * Qsens_core.Worst_case.point list) list -> Table.t
(** Classification of each curve's tail: bounded (Theorem 2 regime)
    versus quadratic in delta (Theorem 1 regime). *)
