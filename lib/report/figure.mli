(** Rendering of worst-case sensitivity curves (the paper's Figures 5-7)
    as data tables and ASCII log-log plots. *)

val series_table :
  (string * Qsens_core.Worst_case.point list) list -> Table.t
(** One row per delta, one column per query: the exact data series behind
    a figure. *)

val ascii_plot :
  ?width:int ->
  ?height:int ->
  (string * Qsens_core.Worst_case.point list) list ->
  string
(** A log-log character plot of all series overlaid (each series drawn
    with its own letter), for eyeballing curve shapes in a terminal. *)

val asymptote_summary :
  (string * Qsens_core.Worst_case.point list) list -> Table.t
(** Classification of each curve's tail: bounded (Theorem 2 regime)
    versus quadratic in delta (Theorem 1 regime). *)

val selection_series :
  Qsens_core.Select.point list ->
  (string * Qsens_core.Worst_case.point list) list
(** The classic/LEC/minimax decision rules as three overlayable
    worst-case-regret curves (each point: the regret of the plan that
    rule picks at that delta), ready for {!series_table} and
    {!ascii_plot}.  The classic series is the ordinary worst-case GTC
    curve; the vertical gap to the minimax series is what robust
    selection buys. *)

val selection_table :
  signatures:string array -> Qsens_core.Select.point list -> Table.t
(** One row per delta: the three rules' chosen plan signatures, the
    classic and minimax worst-case regrets, and their ratio (the
    robustness gain; ["-"] when the choices coincide). *)
