(* A fixed-size domain pool.  Workers block on a condition variable and
   wake per batch; each batch is an array of tasks claimed by index
   under the batch's own lock, so the pool adds no allocation or
   synchronisation to the tasks themselves beyond one lock round-trip
   per task.  The calling domain participates in every batch, which
   both uses all [domains] cores and makes [domains = 1] a true
   sequential inline fallback. *)

module Obs = Qsens_obs.Obs

let m_batches = Obs.counter ~help:"pool batches submitted" "pool.batches"
let m_tasks = Obs.counter ~help:"pool tasks executed" "pool.tasks"

let m_chunk_size =
  Obs.histogram ~help:"elements per pool chunk" "pool.chunk_size"

type batch = {
  tasks : (unit -> unit) array;
  retries : int;
  mutable next : int;
  mutable completed : int;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  batch_lock : Mutex.t;
  finished : Condition.t;
}

(* Run one task, re-running it up to [retries] extra times if it raises.
   Deterministic tasks that raise will raise again — retries only help
   tasks whose failures are transient (e.g. probing through a faulty
   interface) — so the default is zero. *)
let attempt_task ~retries f =
  let rec go k =
    match f () with
    | () -> None
    | exception e ->
        if k < retries then go (k + 1)
        else Some (e, Printexc.get_raw_backtrace ())
  in
  go 0

type t = {
  size : int;
  lock : Mutex.t;
  wake : Condition.t;
  mutable batch : batch option;
  mutable generation : int;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t array;
}

let max_domains = 128

let default_domains () =
  let from_env =
    match Sys.getenv_opt "QSENS_DOMAINS" with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Some n
        | _ -> None)
  in
  let n =
    match from_env with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (min max_domains n)

let domains pool = pool.size

(* Drain a batch: claim task indices until exhausted.  Runs on workers
   and on the submitting domain alike. *)
let run_tasks b =
  let total = Array.length b.tasks in
  let continue = ref true in
  while !continue do
    Mutex.lock b.batch_lock;
    if b.next >= total then begin
      Mutex.unlock b.batch_lock;
      continue := false
    end
    else begin
      let i = b.next in
      b.next <- i + 1;
      Mutex.unlock b.batch_lock;
      let failure = attempt_task ~retries:b.retries b.tasks.(i) in
      Mutex.lock b.batch_lock;
      (match (failure, b.failure) with
      | Some f, None -> b.failure <- Some f
      | _ -> ());
      b.completed <- b.completed + 1;
      if b.completed = total then Condition.broadcast b.finished;
      Mutex.unlock b.batch_lock
    end
  done

let rec worker_loop pool last_gen =
  Mutex.lock pool.lock;
  while pool.generation = last_gen && not pool.shutting_down do
    Condition.wait pool.wake pool.lock
  done;
  if pool.shutting_down then Mutex.unlock pool.lock
  else begin
    let gen = pool.generation in
    let b = pool.batch in
    Mutex.unlock pool.lock;
    (match b with Some b -> run_tasks b | None -> ());
    worker_loop pool gen
  end

let create ?domains () =
  let size =
    match domains with
    | None -> default_domains ()
    | Some n when n >= 1 -> min n max_domains
    | Some _ -> invalid_arg "Pool.create: domains must be >= 1"
  in
  let pool =
    {
      size;
      lock = Mutex.create ();
      wake = Condition.create ();
      batch = None;
      generation = 0;
      shutting_down = false;
      workers = [||];
    }
  in
  if size > 1 then
    pool.workers <-
      Array.init (size - 1) (fun _ ->
          Domain.spawn (fun () -> worker_loop pool 0));
  pool

let shutdown pool =
  Mutex.lock pool.lock;
  if pool.shutting_down then Mutex.unlock pool.lock
  else begin
    pool.shutting_down <- true;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ?(retry = 0) pool tasks =
  let retries = if retry < 0 then 0 else retry in
  let total = Array.length tasks in
  if total = 0 then ()
  else begin
  (* Task identity for tracing is (batch, index) — logical position, not
     the physical domain that happens to claim the task — so traces are
     deterministic under any scheduling.  The disabled path leaves the
     task array untouched. *)
  let tasks =
    if Obs.recording () then begin
      Obs.add m_batches 1;
      Obs.add m_tasks total;
      let batch = Obs.begin_batch () in
      Array.mapi (fun i f () -> Obs.with_task ~batch ~index:i f) tasks
    end
    else tasks
  in
  if pool.size <= 1 || total = 1 then
    Array.iter
      (fun f ->
        match attempt_task ~retries f with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      tasks
  else begin
    let b =
      {
        tasks;
        retries;
        next = 0;
        completed = 0;
        failure = None;
        batch_lock = Mutex.create ();
        finished = Condition.create ();
      }
    in
    Mutex.lock pool.lock;
    if Option.is_some pool.batch || pool.shutting_down then begin
      Mutex.unlock pool.lock;
      invalid_arg "Pool.run: nested or concurrent batches are not supported"
    end;
    pool.batch <- Some b;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.lock;
    run_tasks b;
    Mutex.lock b.batch_lock;
    while b.completed < total do
      Condition.wait b.finished b.batch_lock
    done;
    Mutex.unlock b.batch_lock;
    Mutex.lock pool.lock;
    pool.batch <- None;
    Mutex.unlock pool.lock;
    match b.failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
  end

let chunk_bounds ~n ~chunks i =
  if chunks < 1 || i < 0 || i >= chunks then
    invalid_arg "Pool.chunk_bounds: bad chunk index";
  let q = n / chunks and r = n mod chunks in
  let lo = (i * q) + min i r in
  let len = q + if i < r then 1 else 0 in
  (lo, lo + len)

(* Default chunk count: at least two waves per domain so the
   claim-by-index scheduler can balance uneven chunks, and for large
   index spaces one chunk per ~64 elements so a single slow region
   never serialises a whole domain-sized slice.  One formula for every
   call site; pass [?chunks] to override. *)
let auto_chunks ~domains ~n =
  if domains < 1 then invalid_arg "Pool.auto_chunks: domains must be >= 1";
  if n <= 0 then 1
  else max 1 (min n (max (2 * domains) (n / 64)))

let resolve_chunks pool ~n = function
  | Some c when c >= 1 -> min c n
  | Some _ -> invalid_arg "Pool: chunks must be >= 1"
  | None -> auto_chunks ~domains:pool.size ~n

let parallel_for_chunked ?chunks ?retry pool ~n body =
  if n > 0 then begin
    let chunks = resolve_chunks pool ~n chunks in
    if pool.size <= 1 || chunks = 1 then
      match attempt_task ~retries:(Option.value ~default:0 retry) (fun () -> body 0 n) with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    else
      run ?retry pool
        (Array.init chunks (fun i ->
             let lo, hi = chunk_bounds ~n ~chunks i in
             if Obs.recording () then
               Obs.observe m_chunk_size (float_of_int (hi - lo));
             (* qsens-check: disable=C001 — trampoline: the caller's [body] contract is chunk-disjoint writes *)
             fun () -> body lo hi))
  end

let map_reduce ?chunks ?retry pool ~n ~map ~reduce ~init =
  if n <= 0 then init
  else begin
    let chunks = resolve_chunks pool ~n chunks in
    if pool.size <= 1 || chunks = 1 then begin
      let result = ref None in
      (match
         attempt_task
           ~retries:(Option.value ~default:0 retry)
           (fun () -> result := Some (map 0 n))
       with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      match !result with Some v -> reduce init v | None -> init
    end
    else begin
      let results = Array.make chunks None in
      run ?retry pool
        (Array.init chunks (fun i ->
             let lo, hi = chunk_bounds ~n ~chunks i in
             if Obs.recording () then
               Obs.observe m_chunk_size (float_of_int (hi - lo));
             (* qsens-check: disable=C001 — each task stores into its own slot; [map] must not share state *)
             fun () -> results.(i) <- Some (map lo hi)));
      Array.fold_left
        (fun acc r ->
          match r with Some v -> reduce acc v | None -> acc)
        init results
    end
  end
