(** A fixed-size pool of OCaml 5 domains for data-parallel analysis.

    The sensitivity machinery is dominated by embarrassingly parallel
    loops: vertex enumeration over [k]-subsets of hyperplanes
    (Observation 2), linear-fractional maximisation over plans x deltas
    (Section 6.1), and region-of-influence enumeration per candidate
    plan (Observation 3).  This pool executes such loops across a fixed
    set of domains built directly on [Domain]/[Mutex]/[Condition] — no
    dependencies beyond the standard library.

    {2 Determinism}

    All combinators partition the index space [0 .. n-1] into contiguous
    chunks by a fixed formula ({!chunk_bounds}) and, for
    {!map_reduce}, reduce the per-chunk results {e in ascending chunk
    order} on the calling domain.  Scheduling therefore never affects
    results: a reduction that is associative (it need not be
    commutative) produces the same value for any pool size, and an
    order-sensitive greedy pass can be reproduced exactly by merging the
    chunk outputs in chunk order.

    {2 Sizing}

    A pool of [domains = 1] runs everything inline on the calling
    domain — the safe sequential fallback.  {!default_domains} honours
    the [QSENS_DOMAINS] environment variable before falling back to
    [Domain.recommended_domain_count ()].

    Pools are not reentrant: running a batch from inside a pooled task
    raises [Invalid_argument].  Use a single pool per analysis
    pipeline. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts [domains - 1] worker domains (the
    caller participates in every batch, so [domains] is the total
    parallelism).  [domains] defaults to {!default_domains}[ ()] and is
    clamped to [1 .. 128].  Raises [Invalid_argument] if [domains < 1]. *)

val domains : t -> int
(** Total parallelism of the pool (workers + the calling domain). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  The pool must be idle. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)

val default_domains : unit -> int
(** [QSENS_DOMAINS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()], clamped to [1 .. 128]. *)

val run : ?retry:int -> t -> (unit -> unit) array -> unit
(** [run pool tasks] executes every task exactly once across the pool
    (the caller participates) and returns when all have finished.  The
    first exception raised by a task is re-raised after the batch
    completes, with the backtrace it was originally raised with (the
    trace points into the task body, not into the pool internals).
    [retry] (default 0) re-runs a raising task up to that many extra
    times before recording the failure — useful only for tasks whose
    failures are transient, e.g. probes through a fault-injected
    interface; a deterministic task will just fail again.  Raises
    [Invalid_argument] on nested or concurrent use. *)

val chunk_bounds : n:int -> chunks:int -> int -> int * int
(** [chunk_bounds ~n ~chunks i] is the half-open range [(lo, hi)] of the
    [i]-th of [chunks] near-equal contiguous chunks of [0 .. n-1].
    Deterministic in its arguments; sizes differ by at most one. *)

val auto_chunks : domains:int -> n:int -> int
(** [auto_chunks ~domains ~n] is the default chunk count used when
    [?chunks] is omitted: [max (2 * domains) (n / 64)], clamped to
    [1 .. n] — at least two waves per domain for claim-based load
    balancing, and one chunk per ~64 elements on large index spaces so
    a slow region never serialises a domain-sized slice.  The single
    chunking formula for every combinator and call site (determinism:
    results never depend on the chunk count, only scheduling does).
    Raises [Invalid_argument] if [domains < 1]. *)

val parallel_for_chunked :
  ?chunks:int -> ?retry:int -> t -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for_chunked pool ~n body] calls [body lo hi] for each
    chunk, covering [0 .. n-1] exactly once.  [chunks] defaults to
    {!auto_chunks} (capped at [n]).  With one domain the single call
    [body 0 n] runs inline.  [retry] as in {!run} (the inline path
    honours it too). *)

val map_reduce :
  ?chunks:int ->
  ?retry:int ->
  t ->
  n:int ->
  map:(int -> int -> 'a) ->
  reduce:('b -> 'a -> 'b) ->
  init:'b ->
  'b
(** [map_reduce pool ~n ~map ~reduce ~init] computes
    [reduce (... (reduce init (map lo_0 hi_0))) (map lo_k hi_k)] where
    the chunk results are folded in ascending chunk order on the calling
    domain — deterministic for any associative [map]/[reduce] pair, and
    identical to the sequential [reduce init (map 0 n)] whenever [map]
    distributes over chunk concatenation. *)
