(* Packed plan matrices on unboxed storage.  The data lives in one
   contiguous [floatarray] — flat, unboxed, no per-row indirection — so
   the blocked matvec streams it with unsafe accessors after validating
   bounds once per call.  Lint rule K003 bans fresh allocation inside the
   marked hot sections; the [_into] variants plus {!Scratch} keep
   steady-state evaluation at zero minor-heap words. *)

module FA = Float.Array

type t = { data : floatarray; rows : int; cols : int }

let pack plans =
  let rows = Array.length plans in
  if rows = 0 then { data = FA.create 0; rows = 0; cols = 0 }
  else begin
    let cols = Array.length plans.(0) in
    Array.iteri
      (fun i p ->
        if Array.length p <> cols then
          invalid_arg
            (Printf.sprintf "Kernel.pack: row %d has %d columns, expected %d" i
               (Array.length p) cols))
      plans;
    let data = FA.create (rows * cols) in
    Array.iteri
      (fun i p ->
        let base = i * cols in
        for j = 0 to cols - 1 do
          FA.unsafe_set data (base + j) (Array.unsafe_get p j)
        done)
      plans;
    { data; rows; cols }
  end

let rows t = t.rows
let cols t = t.cols
let bytes t = (FA.length t.data * 8) + 48

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg
      (Printf.sprintf "Kernel.get: index (%d, %d) outside %dx%d matrix" i j
         t.rows t.cols);
  FA.get t.data ((i * t.cols) + j)

let row t i =
  if i < 0 || i >= t.rows then
    invalid_arg
      (Printf.sprintf "Kernel.row: row %d outside %dx%d matrix" i t.rows t.cols);
  Array.init t.cols (fun j -> FA.get t.data ((i * t.cols) + j))

let dot_row t i x =
  if i < 0 || i >= t.rows then
    invalid_arg
      (Printf.sprintf "Kernel.dot_row: row %d outside %dx%d matrix" i t.rows
         t.cols);
  Vec.dot_sub_fa t.data (i * t.cols) t.cols x

let prefix_sums t =
  let stride = t.cols + 1 in
  let out = FA.make (t.rows * stride) 0. in
  for i = 0 to t.rows - 1 do
    let base = i * stride and row = i * t.cols in
    let acc = ref 0. in
    for j = 0 to t.cols - 1 do
      acc := !acc +. FA.unsafe_get t.data (row + j);
      FA.unsafe_set out (base + j + 1) !acc
    done
  done;
  out

(* Reusable output buffers for the [_into] paths: one growable unboxed
   array per scratch, so repeated evaluations against matrices of any
   (bounded) size allocate nothing after warm-up. *)
module Scratch = struct
  type t = { mutable buf : floatarray }

  let create () = { buf = FA.create 0 }

  let ensure t n =
    if n < 0 then invalid_arg "Kernel.Scratch.ensure: negative size";
    if FA.length t.buf < n then t.buf <- FA.create n;
    t.buf

  let capacity t = FA.length t.buf
end

let check_matvec ~who t x =
  if Array.length x <> t.cols then
    invalid_arg
      (Printf.sprintf "Kernel.%s: vector has dimension %d, expected %d" who
         (Array.length x) t.cols)

(* Four-row blocking: independent accumulators per row amortize the load
   of [x.(j)] across rows.  Columns are never blocked — each row
   accumulates in ascending index order, so every entry is bit-identical
   to [Vec.dot (row t i) x].  The loop is written out once per output
   representation (boxed [float array] and unboxed [floatarray]) rather
   than through a store callback: a closure would box every finished
   accumulator, allocating on the very path these exist to keep clean. *)
(* qsens-hot: begin *)
let matvec t x out =
  check_matvec ~who:"matvec" t x;
  if Array.length out <> t.rows then
    invalid_arg
      (Printf.sprintf "Kernel.matvec: output has dimension %d, expected %d"
         (Array.length out) t.rows);
  let data = t.data and cols = t.cols in
  let i = ref 0 in
  while !i + 4 <= t.rows do
    let r0 = !i * cols in
    let r1 = r0 + cols in
    let r2 = r1 + cols in
    let r3 = r2 + cols in
    let acc0 = ref 0. and acc1 = ref 0. in
    let acc2 = ref 0. and acc3 = ref 0. in
    for j = 0 to cols - 1 do
      let xj = Array.unsafe_get x j in
      acc0 := !acc0 +. (FA.unsafe_get data (r0 + j) *. xj);
      acc1 := !acc1 +. (FA.unsafe_get data (r1 + j) *. xj);
      acc2 := !acc2 +. (FA.unsafe_get data (r2 + j) *. xj);
      acc3 := !acc3 +. (FA.unsafe_get data (r3 + j) *. xj)
    done;
    Array.unsafe_set out !i !acc0;
    Array.unsafe_set out (!i + 1) !acc1;
    Array.unsafe_set out (!i + 2) !acc2;
    Array.unsafe_set out (!i + 3) !acc3;
    i := !i + 4
  done;
  for r = !i to t.rows - 1 do
    Array.unsafe_set out r (Vec.dot_sub_fa data (r * cols) cols x)
  done

let matvec_into t x out =
  check_matvec ~who:"matvec_into" t x;
  if FA.length out < t.rows then
    invalid_arg
      (Printf.sprintf "Kernel.matvec_into: output has dimension %d, expected \
                       at least %d"
         (FA.length out) t.rows);
  let data = t.data and cols = t.cols in
  let i = ref 0 in
  while !i + 4 <= t.rows do
    let r0 = !i * cols in
    let r1 = r0 + cols in
    let r2 = r1 + cols in
    let r3 = r2 + cols in
    let acc0 = ref 0. and acc1 = ref 0. in
    let acc2 = ref 0. and acc3 = ref 0. in
    for j = 0 to cols - 1 do
      let xj = Array.unsafe_get x j in
      acc0 := !acc0 +. (FA.unsafe_get data (r0 + j) *. xj);
      acc1 := !acc1 +. (FA.unsafe_get data (r1 + j) *. xj);
      acc2 := !acc2 +. (FA.unsafe_get data (r2 + j) *. xj);
      acc3 := !acc3 +. (FA.unsafe_get data (r3 + j) *. xj)
    done;
    FA.unsafe_set out !i !acc0;
    FA.unsafe_set out (!i + 1) !acc1;
    FA.unsafe_set out (!i + 2) !acc2;
    FA.unsafe_set out (!i + 3) !acc3;
    i := !i + 4
  done;
  for r = !i to t.rows - 1 do
    FA.unsafe_set out r (Vec.dot_sub_fa data (r * cols) cols x)
  done
(* qsens-hot: end *)

let dot_rows t x =
  let out = Array.make t.rows 0. in
  matvec t x out;
  out

let dot_rows_into t x scratch =
  let out = Scratch.ensure scratch t.rows in
  matvec_into t x out;
  out
