type t = { data : float array; rows : int; cols : int }

let pack plans =
  let rows = Array.length plans in
  if rows = 0 then { data = [||]; rows = 0; cols = 0 }
  else begin
    let cols = Array.length plans.(0) in
    Array.iteri
      (fun i p ->
        if Array.length p <> cols then
          invalid_arg
            (Printf.sprintf "Kernel.pack: row %d has %d columns, expected %d" i
               (Array.length p) cols))
      plans;
    let data = Array.make (rows * cols) 0. in
    Array.iteri
      (fun i p -> Array.blit p 0 data (i * cols) cols)
      plans;
    { data; rows; cols }
  end

let rows t = t.rows
let cols t = t.cols

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg
      (Printf.sprintf "Kernel.get: index (%d, %d) outside %dx%d matrix" i j
         t.rows t.cols);
  t.data.((i * t.cols) + j)

let row t i =
  if i < 0 || i >= t.rows then
    invalid_arg
      (Printf.sprintf "Kernel.row: row %d outside %dx%d matrix" i t.rows t.cols);
  Array.sub t.data (i * t.cols) t.cols

let dot_row t i x =
  if i < 0 || i >= t.rows then
    invalid_arg
      (Printf.sprintf "Kernel.dot_row: row %d outside %dx%d matrix" i t.rows
         t.cols);
  Vec.dot_sub t.data (i * t.cols) t.cols x

let prefix_sums t =
  let stride = t.cols + 1 in
  let out = Array.make (t.rows * stride) 0. in
  for i = 0 to t.rows - 1 do
    let base = i * stride and row = i * t.cols in
    let acc = ref 0. in
    for j = 0 to t.cols - 1 do
      acc := !acc +. t.data.(row + j);
      out.(base + j + 1) <- !acc
    done
  done;
  out

let matvec t x out =
  if Array.length x <> t.cols then
    invalid_arg
      (Printf.sprintf "Kernel.matvec: vector has dimension %d, expected %d"
         (Array.length x) t.cols);
  if Array.length out <> t.rows then
    invalid_arg
      (Printf.sprintf "Kernel.matvec: output has dimension %d, expected %d"
         (Array.length out) t.rows);
  let data = t.data and cols = t.cols in
  (* Four-row blocking: independent accumulators per row amortize the
     load of [x.(j)] across rows.  Columns are never blocked — each row
     accumulates in ascending index order, so every entry is bit-identical
     to [Vec.dot (row t i) x]. *)
  let i = ref 0 in
  while !i + 4 <= t.rows do
    let r0 = !i * cols in
    let r1 = r0 + cols in
    let r2 = r1 + cols in
    let r3 = r2 + cols in
    let acc0 = ref 0. and acc1 = ref 0. in
    let acc2 = ref 0. and acc3 = ref 0. in
    for j = 0 to cols - 1 do
      let xj = x.(j) in
      acc0 := !acc0 +. (data.(r0 + j) *. xj);
      acc1 := !acc1 +. (data.(r1 + j) *. xj);
      acc2 := !acc2 +. (data.(r2 + j) *. xj);
      acc3 := !acc3 +. (data.(r3 + j) *. xj)
    done;
    out.(!i) <- !acc0;
    out.(!i + 1) <- !acc1;
    out.(!i + 2) <- !acc2;
    out.(!i + 3) <- !acc3;
    i := !i + 4
  done;
  for r = !i to t.rows - 1 do
    out.(r) <- Vec.dot_sub data (r * cols) cols x
  done

let dot_rows t x =
  let out = Array.make t.rows 0. in
  matvec t x out;
  out
