type t = float array

let make n x = Array.make n x
let init = Array.init
let of_list = Array.of_list
let to_list = Array.to_list
let dim = Array.length
let get = Array.get
let copy = Array.copy
let zero n = Array.make n 0.
let basis n i = init n (fun j -> if i = j then 1. else 0.)

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length a) (Array.length b))

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let dot_sub a pos len x =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg
      (Printf.sprintf "Vec.dot_sub: slice [%d, %d) outside array of length %d"
         pos (pos + len) (Array.length a));
  if len <> Array.length x then
    invalid_arg
      (Printf.sprintf "Vec.dot_sub: dimension mismatch (%d vs %d)" len
         (Array.length x));
  let acc = ref 0. in
  for i = 0 to len - 1 do
    acc := !acc +. (a.(pos + i) *. x.(i))
  done;
  !acc

(* Same ascending accumulation over an unboxed [floatarray] slice.  The
   bounds are validated up front, so the loop reads with unsafe accessors
   — the values (and hence the bits) are the same as [dot_sub] on a boxed
   copy of the slice. *)
let dot_sub_fa a pos len x =
  if pos < 0 || len < 0 || pos + len > Float.Array.length a then
    invalid_arg
      (Printf.sprintf
         "Vec.dot_sub_fa: slice [%d, %d) outside array of length %d" pos
         (pos + len) (Float.Array.length a));
  if len <> Array.length x then
    invalid_arg
      (Printf.sprintf "Vec.dot_sub_fa: dimension mismatch (%d vs %d)" len
         (Array.length x));
  let acc = ref 0. in
  for i = 0 to len - 1 do
    acc :=
      !acc +. (Float.Array.unsafe_get a (pos + i) *. Array.unsafe_get x i)
  done;
  !acc

let of_floatarray fa = Array.init (Float.Array.length fa) (Float.Array.get fa)
let to_floatarray a = Float.Array.init (Array.length a) (Array.get a)

let map2_named name f a b =
  check_dims name a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let map2 f a b = map2_named "map2" f a b
let add a b = map2_named "add" ( +. ) a b
let sub a b = map2_named "sub" ( -. ) a b
let scale k a = Array.map (fun x -> k *. x) a
let neg a = scale (-1.) a
let norm2 a = sqrt (dot a a)
let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. a

let normalize a =
  let n = norm2 a in
  if Float.equal n 0. then copy a else scale (1. /. n) a

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       for i = 0 to Array.length a - 1 do
         if Float.abs (a.(i) -. b.(i)) > eps then ok := false
       done;
       !ok
     end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else
        let c = Float.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let dominates a b =
  Array.length a = Array.length b
  &&
  let all_le = ref true and some_lt = ref false in
  for i = 0 to Array.length a - 1 do
    if a.(i) > b.(i) then all_le := false;
    if a.(i) < b.(i) then some_lt := true
  done;
  !all_le && !some_lt

let map = Array.map
let fold = Array.fold_left
let max_elt a = Array.fold_left Float.max neg_infinity a
let min_elt a = Array.fold_left Float.min infinity a

let argmax a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let pp ppf a =
  Format.fprintf ppf "(@[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%g" x)
    a;
  Format.fprintf ppf "@])"

let to_string a = Format.asprintf "%a" pp a
