(** Dense matrices and linear solvers.

    Provides the Gaussian elimination and least-squares machinery used to
    recover resource usage vectors from total-cost observations through a
    narrow optimizer interface (Section 6.1.1 of the paper). *)

type t
(** A dense [rows x cols] matrix of floats. *)

val make : int -> int -> float -> t
(** [make rows cols x] is the matrix with every entry [x]. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)

val of_rows : Vec.t list -> t
(** Builds a matrix whose rows are the given vectors; they must share a
    dimension.  Raises [Invalid_argument] on an empty list or ragged rows. *)

val identity : int -> t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val transpose : t -> t

val mul : t -> t -> t
(** Matrix product; raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m v] is the matrix-vector product [m v]. *)

val add : t -> t -> t

val scale : float -> t -> t

val equal : ?eps:float -> t -> t -> bool

exception Singular
(** Raised by the solvers when the system matrix is (numerically)
    singular. *)

val solve : t -> Vec.t -> Vec.t
(** [solve a b] solves the square system [a x = b] by Gaussian elimination
    with partial pivoting.  Raises [Singular] when no unique solution
    exists.  This is the elimination routine referenced in Section 6.1.1. *)

val inverse : t -> t
(** Matrix inverse via Gaussian elimination.  Raises [Singular]. *)

val determinant : t -> float

val least_squares : t -> Vec.t -> Vec.t
(** [least_squares c t] returns the least-squares estimate
    [(cᵀc)⁻¹ cᵀ t] of [u] in the overdetermined system [c u = t]
    (Section 6.1.1: recovering a plan's resource usage vector from [m >= n]
    observed total costs).  Raises [Singular] when the observations do not
    span the resource space. *)

val ridge_least_squares : ridge:float -> prior:Vec.t -> t -> Vec.t -> Vec.t
(** Tikhonov-regularized least squares shrinking toward [prior]:
    [(cᵀc + λI) x = cᵀ t + λ prior], with [λ] scaled by the mean
    diagonal of [cᵀc] so [ridge] is unitless.  Solvable even when the
    plain normal equations are underdetermined or singular (any
    [ridge > 0] makes the system positive definite for full-rank-zero
    data too, barring exact cancellation); raises [Singular] only in
    the degenerate all-zero case.  Raises [Invalid_argument] when
    [ridge <= 0] or the prior dimension mismatches. *)

val irls : ?max_iter:int -> ?tol:float -> ?tuning:float -> t -> Vec.t -> Vec.t
(** Outlier-robust least squares: iteratively reweighted with Huber
    weights, residual scale 1.4826 x median absolute residual, weight
    [min 1 (k/|r|)] at [k = tuning * scale] (default 1.345, the classic
    95%-efficiency constant).  Observations the faults layer corrupted
    degrade the residual instead of dragging the estimate.  On clean,
    exactly-consistent data the residual scale is zero and the plain
    {!least_squares} solution is returned bit-identically.  Raises
    [Singular] like {!least_squares}. *)

val pp : Format.formatter -> t -> unit
