(** Flat, row-major plan matrices on unboxed storage.

    Candidate plans' usage vectors are packed into one contiguous
    [floatarray] so the hot paths — worst-case sweeps, Monte-Carlo
    sampling, vertex feasibility checks — evaluate all plan costs at a
    cost vector with a blocked, allocation-free matrix-vector product
    instead of per-plan {!Vec.dot} calls over an array of boxed rows.
    The [_into] variants plus {!Scratch} make steady-state evaluation
    allocate zero minor-heap words (measured by [Gc.minor_words] deltas;
    see DESIGN.md section 16).

    {2 Determinism contract}

    Every row product accumulates in ascending column order, exactly like
    {!Vec.dot}: [matvec], [matvec_into] and [dot_row] results are
    bit-identical to the naive per-row dots.  Blocking is over rows only
    (independent accumulators); columns are never reordered or split.

    {2 Thread safety}

    A packed matrix is immutable after {!pack}; concurrent reads from
    multiple domains are safe.  [matvec]/[matvec_into] write only to the
    caller's output buffer.  A {!Scratch.t} is single-owner mutable
    state: never share one across domains. *)

type t

val pack : Vec.t array -> t
(** [pack plans] copies the rows into one contiguous row-major unboxed
    array.  Raises [Invalid_argument] if the rows have unequal lengths.
    The empty array packs to a 0x0 matrix. *)

val rows : t -> int
val cols : t -> int

val bytes : t -> int
(** Resident size of the packed matrix in bytes, computed from its
    dimensions (8 bytes per entry plus fixed overhead) — the honest
    [size_of] for byte-budgeted caches, with no marshalling guesswork. *)

val get : t -> int -> int -> float
(** [get t i j] is entry (i, j); raises [Invalid_argument] out of range. *)

val row : t -> int -> Vec.t
(** [row t i] is a fresh boxed copy of row [i]. *)

val dot_row : t -> int -> Vec.t -> float
(** [dot_row t i x] is [Vec.dot (row t i) x] without the copy —
    bit-identical, allocation-free. *)

val prefix_sums : t -> floatarray
(** [prefix_sums t] is a row-major [rows x (cols + 1)] table [P] with
    [P.(i * (cols + 1) + j)] the sum of the first [j] entries of row
    [i], accumulated in ascending column order — so each row's final
    entry is bit-identical to the ascending fold of the row.  Feeds the
    suffix completion bounds of the branch-and-bound vertex search: the
    total weight of the low coordinates [0 .. d] of row [i] is
    [P.(i * (cols + 1) + d + 1)]. *)

(** Reusable unboxed output buffers for the [_into] paths.  A scratch
    grows to the largest size ever requested and is then reused, so
    repeated evaluations allocate nothing after warm-up. *)
module Scratch : sig
  type t

  val create : unit -> t

  val ensure : t -> int -> floatarray
  (** [ensure s n] is a buffer of length at least [n], growing the
      scratch if needed.  Contents beyond what the caller writes are
      unspecified.  Raises [Invalid_argument] on negative [n]. *)

  val capacity : t -> int
end

val matvec : t -> Vec.t -> Vec.t -> unit
(** [matvec t x out] stores the product [t x] into [out]
    ([dim out = rows t]).  Each entry is bit-identical to
    [dot_row t i x].  Raises [Invalid_argument] on dimension
    mismatch. *)

val matvec_into : t -> Vec.t -> floatarray -> unit
(** [matvec_into t x out] is {!matvec} into an unboxed buffer of length
    at least [rows t] (extra entries untouched) — the zero-allocation
    steady-state form.  Bit-identical to {!matvec}. *)

val dot_rows : t -> Vec.t -> float array
(** [dot_rows t x] is {!matvec} into a fresh array: every plan's cost at
    the cost vector [x] in one blocked product.  Entry [i] is
    bit-identical to [dot_row t i x].  The plan-selection paths
    ({!Qsens_core.Select}) evaluate all candidate expected costs with a
    single call. *)

val dot_rows_into : t -> Vec.t -> Scratch.t -> floatarray
(** [dot_rows_into t x s] is {!dot_rows} into the scratch's buffer
    (returned; length may exceed [rows t]) — zero allocation once the
    scratch has warmed up to [rows t]. *)
