(** Dense floating-point vectors.

    Vectors are immutable from the point of view of this interface: every
    operation returns a fresh array.  They back the resource usage vectors
    [U] and resource cost vectors [C] of the paper's framework, where the
    cost of a plan is the dot product [U . C] (Equation 3).

    {2 Thread safety}

    No function in this module mutates its arguments or touches shared
    state, so concurrent {e reads} of the same vector from multiple
    domains (as done by {!Qsens_parallel.Pool} users: vertex enumeration,
    worst-case curves, Monte-Carlo sampling) are safe without locks.
    The representation is a bare [float array]; callers that mutate a
    vector in place through the array syntax must not share it across
    domains while doing so. *)

type t = float array

val make : int -> float -> t
(** [make n x] is the [n]-dimensional vector with every component [x]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val of_list : float list -> t

val to_list : t -> float list

val dim : t -> int
(** Number of components. *)

val get : t -> int -> float

val copy : t -> t

val zero : int -> t
(** [zero n] is the [n]-dimensional zero vector. *)

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of dimension [n]. *)

val dot : t -> t -> float
(** [dot u c] is the inner product; raises [Invalid_argument] on dimension
    mismatch.  This is the total plan cost [T = U . C] of Equation 3. *)

val dot_sub : t -> int -> int -> t -> float
(** [dot_sub a pos len x] is the inner product of the slice
    [a.(pos) .. a.(pos + len - 1)] with [x], accumulated in ascending
    index order exactly like {!dot} — allocation-free, for packed
    row-major plan matrices (see [Qsens_linalg.Kernel]).  Raises
    [Invalid_argument] if the slice lies outside [a] or
    [len <> dim x]. *)

val dot_sub_fa : floatarray -> int -> int -> t -> float
(** [dot_sub_fa a pos len x] is {!dot_sub} over an unboxed [floatarray]
    slice: ascending accumulation, bit-identical to [dot_sub] on a boxed
    copy of the slice.  Backs the unboxed plan matrices of
    [Qsens_linalg.Kernel]. *)

val of_floatarray : floatarray -> t

val to_floatarray : t -> floatarray
(** Boxed/unboxed bridges; both copy. *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is the normal direction [A - B] of the switchover plane
    between two plans (Section 4.2). *)

val scale : float -> t -> t

val neg : t -> t

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val normalize : t -> t
(** Unit vector in the same direction; the zero vector is returned
    unchanged. *)

val equal : ?eps:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [eps]
    (default [1e-9]). *)

val compare : t -> t -> int
(** Total order: shorter vectors first, then lexicographic by
    [Float.compare] on components.  NaN is handled by [Float.compare]'s
    total order — equal to itself and smaller than every other float
    (including [neg_infinity]) — so sorting never loses or reorders
    vectors containing NaN, unlike the polymorphic [compare] whose
    [=]-consistency NaN breaks.  Suitable as a deterministic tie-break
    key; not a numeric tolerance — use {!equal} for eps comparisons. *)

val dominates : t -> t -> bool
(** [dominates a b] is true when [b] lies in the positive first quadrant
    relative to [a] (Section 4.4): [b = a + q] with [q >= 0] componentwise
    and [b <> a].  A dominated plan can never be candidate optimal. *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val max_elt : t -> float

val min_elt : t -> float

val argmax : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [(x1, x2, ..., xn)] with compact float formatting. *)

val to_string : t -> string
