type t = { nr : int; nc : int; a : float array }

let make nr nc x = { nr; nc; a = Array.make (nr * nc) x }

let init nr nc f =
  { nr; nc; a = Array.init (nr * nc) (fun k -> f (k / nc) (k mod nc)) }

let of_rows = function
  | [] -> invalid_arg "Mat.of_rows: empty"
  | r0 :: _ as rs ->
      let nc = Array.length r0 in
      let rows = Array.of_list rs in
      Array.iter
        (fun r ->
          if Array.length r <> nc then invalid_arg "Mat.of_rows: ragged rows")
        rows;
      init (Array.length rows) nc (fun i j -> rows.(i).(j))

let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let rows m = m.nr
let cols m = m.nc
let get m i j = m.a.((i * m.nc) + j)
let set m i j x = m.a.((i * m.nc) + j) <- x
let row m i = Array.init m.nc (fun j -> get m i j)
let col m j = Array.init m.nr (fun i -> get m i j)
let transpose m = init m.nc m.nr (fun i j -> get m j i)

let mul m n =
  if m.nc <> n.nr then invalid_arg "Mat.mul: dimension mismatch";
  init m.nr n.nc (fun i j ->
      let acc = ref 0. in
      for k = 0 to m.nc - 1 do
        acc := !acc +. (get m i k *. get n k j)
      done;
      !acc)

let mul_vec m v =
  if m.nc <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.nr (fun i ->
      let acc = ref 0. in
      for j = 0 to m.nc - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

let add m n =
  if m.nr <> n.nr || m.nc <> n.nc then invalid_arg "Mat.add: dimension mismatch";
  { m with a = Array.mapi (fun k x -> x +. n.a.(k)) m.a }

let scale k m = { m with a = Array.map (fun x -> k *. x) m.a }

let equal ?(eps = 1e-9) m n =
  m.nr = n.nr && m.nc = n.nc
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) m.a n.a

exception Singular

(* Gaussian elimination with partial pivoting, reducing [aug] (a copy of
   the system matrix augmented with one or more right-hand-side columns)
   in place.  Returns the permutation sign for determinant computation. *)
let forward_eliminate aug n ncols =
  let sign = ref 1. in
  for k = 0 to n - 1 do
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get aug i k) > Float.abs (get aug !piv k) then piv := i
    done;
    if Float.abs (get aug !piv k) < 1e-12 then raise Singular;
    if !piv <> k then begin
      sign := -. !sign;
      for j = 0 to ncols - 1 do
        let t = get aug k j in
        set aug k j (get aug !piv j);
        set aug !piv j t
      done
    end;
    for i = k + 1 to n - 1 do
      let f = get aug i k /. get aug k k in
      if not (Float.equal f 0.) then
        for j = k to ncols - 1 do
          set aug i j (get aug i j -. (f *. get aug k j))
        done
    done
  done;
  !sign

let solve m b =
  let n = m.nr in
  if m.nc <> n then invalid_arg "Mat.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Mat.solve: rhs dimension mismatch";
  let aug = init n (n + 1) (fun i j -> if j = n then b.(i) else get m i j) in
  ignore (forward_eliminate aug n (n + 1));
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref (get aug i n) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get aug i j *. x.(j))
    done;
    x.(i) <- !acc /. get aug i i
  done;
  x

let inverse m =
  let n = m.nr in
  if m.nc <> n then invalid_arg "Mat.inverse: matrix not square";
  let aug =
    init n (2 * n) (fun i j ->
        if j < n then get m i j else if j - n = i then 1. else 0.)
  in
  ignore (forward_eliminate aug n (2 * n));
  (* Back substitution on each identity column. *)
  let inv = make n n 0. in
  for c = 0 to n - 1 do
    for i = n - 1 downto 0 do
      let acc = ref (get aug i (n + c)) in
      for j = i + 1 to n - 1 do
        acc := !acc -. (get aug i j *. get inv j c)
      done;
      set inv i c (!acc /. get aug i i)
    done
  done;
  inv

let determinant m =
  let n = m.nr in
  if m.nc <> n then invalid_arg "Mat.determinant: matrix not square";
  let aug = init n n (fun i j -> get m i j) in
  match forward_eliminate aug n n with
  | sign ->
      let d = ref sign in
      for i = 0 to n - 1 do
        d := !d *. get aug i i
      done;
      !d
  | exception Singular -> 0.

let least_squares c t =
  if rows c < cols c then
    invalid_arg "Mat.least_squares: underdetermined system";
  let ct = transpose c in
  let normal = mul ct c in
  let rhs = mul_vec ct t in
  solve normal rhs

let ridge_least_squares ~ridge ~prior c t =
  if ridge <= 0. then invalid_arg "Mat.ridge_least_squares: ridge <= 0";
  let n = cols c in
  if Array.length prior <> n then
    invalid_arg "Mat.ridge_least_squares: prior dimension mismatch";
  (* (CtC + lambda I) x = Ct t + lambda prior, with lambda scaled by the
     mean diagonal of CtC so [ridge] is unitless. *)
  let ct = transpose c in
  let normal = mul ct c in
  let scale = ref 0. in
  for i = 0 to n - 1 do
    scale := !scale +. get normal i i
  done;
  let lambda = ridge *. Float.max 1e-300 (!scale /. Float.of_int n) in
  for i = 0 to n - 1 do
    set normal i i (get normal i i +. lambda)
  done;
  let rhs = Array.mapi (fun i x -> x +. (lambda *. prior.(i))) (mul_vec ct t) in
  solve normal rhs

(* Iteratively reweighted least squares with Huber weights.  Residuals
   are scaled by 1.4826 * median |r| (a robust sigma estimate); points
   beyond [tuning] scaled deviations are downweighted proportionally to
   1/|r|, so a few corrupted observations degrade the fit instead of
   dragging it.  When the residual scale is (numerically) zero — clean,
   exactly-consistent observations — the OLS solution is returned
   untouched, which keeps fault-free runs bit-identical to
   [least_squares]. *)
let dot_row c i x =
  let acc = ref 0. in
  for j = 0 to cols c - 1 do
    acc := !acc +. (get c i j *. x.(j))
  done;
  !acc

let irls ?(max_iter = 20) ?(tol = 1e-10) ?(tuning = 1.345) c t =
  let m = rows c and n = cols c in
  let x = ref (least_squares c t) in
  let residual x = Array.init m (fun i -> t.(i) -. dot_row c i x)
  and continue_ = ref true
  and iter = ref 0 in
  while !continue_ && !iter < max_iter do
    incr iter;
    let r = residual !x in
    let abs_r = Array.map Float.abs r in
    let sorted = Array.copy abs_r in
    Array.sort Float.compare sorted;
    let median =
      if m mod 2 = 1 then sorted.(m / 2)
      else (sorted.((m / 2) - 1) +. sorted.(m / 2)) /. 2.
    in
    let s = 1.4826 *. median in
    let scale_floor =
      1e-12 *. Float.max 1. (Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0. t)
    in
    if s <= scale_floor then continue_ := false
    else begin
      let k = tuning *. s in
      let w =
        Array.map (fun a -> if a <= k then 1. else k /. a) abs_r
      in
      (* weighted normal equations via sqrt-weight row scaling *)
      let cw = init m n (fun i j -> sqrt w.(i) *. get c i j) in
      let tw = Array.mapi (fun i ti -> sqrt w.(i) *. ti) t in
      let x' = least_squares cw tw in
      let delta =
        Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.
          (Array.mapi (fun i v -> v -. !x.(i)) x')
      in
      let size =
        Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1. x'
      in
      x := x';
      if delta <= tol *. size then continue_ := false
    end
  done;
  !x

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.nr - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "[";
    for j = 0 to m.nc - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%g" (get m i j)
    done;
    Format.fprintf ppf "]"
  done;
  Format.fprintf ppf "@]"
