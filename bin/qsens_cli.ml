(* qsens: command-line interface to the query-optimizer sensitivity
   analysis toolkit.

   Subcommands mirror the paper's experiments: [explain] shows the plan
   chosen at the estimated costs, [worst-case] prints one query's
   worst-case GTC curve, [candidates] runs candidate-optimal-plan
   discovery and the Section-8.2 census, [figure] regenerates a full
   figure, [lsq] validates the least-squares usage recovery, and [params]
   dumps the Section-7.3 configuration table. *)

open Cmdliner
open Qsens_core

let policy_of_string = function
  | "same" | "same-device" -> Ok Qsens_catalog.Layout.Same_device
  | "per-table" -> Ok Qsens_catalog.Layout.Per_table_devices
  | "per-table-and-index" | "split" ->
      Ok Qsens_catalog.Layout.Per_table_and_index_devices
  | s -> Error (`Msg (Printf.sprintf "unknown layout %S" s))

let policy_conv =
  Arg.conv
    ( policy_of_string,
      fun ppf p ->
        Format.pp_print_string ppf (Qsens_catalog.Layout.policy_name p) )

let policy_arg =
  let doc =
    "Storage layout: same-device (Fig. 5), per-table (Fig. 7), or \
     per-table-and-index (Fig. 6)."
  in
  Arg.(
    value
    & opt policy_conv Qsens_catalog.Layout.Same_device
    & info [ "l"; "layout" ] ~docv:"LAYOUT" ~doc)

let sf_arg =
  let doc = "TPC-H scale factor (the paper used 100 = 100 GB)." in
  Arg.(value & opt float 100. & info [ "sf" ] ~docv:"SF" ~doc)

let query_arg =
  let doc = "TPC-H query name, Q1 .. Q22." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let delta_arg =
  let doc = "Largest multiplicative cost error delta to explore." in
  Arg.(value & opt float 10_000. & info [ "d"; "delta" ] ~docv:"DELTA" ~doc)

let seed_arg =
  let doc = "Random seed for the discovery sampling." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let faults_arg =
  let doc =
    "Inject deterministic faults into the narrow optimizer interface: \
     $(b,canned) (5% failures + 2% multiplicative noise, seed 7), \
     $(b,none), or a comma-separated spec of fail=P, timeout=P, \
     cacheloss=P, add=SIGMA, mul=SIGMA, latency=MEAN, jitter=J, seed=N."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let retries_arg =
  let doc =
    "Max attempts per narrow-interface probe when faults are injected."
  in
  Arg.(value & opt int 4 & info [ "retries" ] ~docv:"N" ~doc)

(* Parse --faults into an injector (None for absent or "none"). *)
let injector_of_spec = function
  | None -> None
  | Some spec -> (
      match Qsens_faults.Fault.plan_of_string spec with
      | Error msg ->
          Printf.eprintf "bad --faults spec: %s\n" msg;
          exit 2
      | Ok { Qsens_faults.Fault.models = []; _ } -> None
      | Ok plan -> Some (Qsens_faults.Fault.injector plan))

let retry_for ~faults ~retries =
  match faults with
  | None -> Qsens_faults.Fault.Retry.none
  | Some _ ->
      { Qsens_faults.Fault.Retry.default with max_attempts = max 1 retries }

let print_fault_summary = function
  | None -> ()
  | Some inj ->
      let counts = Qsens_faults.Fault.summary inj in
      if counts = [] then print_endline "faults: none fired"
      else begin
        print_string "faults injected:";
        List.iter (fun (k, n) -> Printf.printf " %s=%d" k n) counts;
        print_newline ()
      end

let domains_arg =
  let doc =
    "OCaml domains for the analysis pool: 1 = sequential (default), 0 = \
     auto (QSENS_DOMAINS or the recommended domain count).  Results are \
     identical to the sequential run."
  in
  Arg.(value & opt int 1 & info [ "j"; "domains" ] ~docv:"N" ~doc)

(* Run [f] with an optional domain pool sized per --domains. *)
let with_domains n f =
  if n = 1 then f None
  else
    let domains =
      if n <= 0 then Qsens_parallel.Pool.default_domains () else n
    in
    Qsens_parallel.Pool.with_pool ~domains (fun p -> f (Some p))

let trace_arg =
  let doc =
    "Write a Chrome-trace JSON of the run to $(docv).  Timestamps are \
     logical (per-track event counters), so a fixed seed produces a \
     byte-identical file on every run, including under -j > 1."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Print the observability metrics summary after the run." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Recording is enabled only when asked for: with both flags absent the
   instrumentation stays an allocation-free no-op. *)
let with_obs ~trace ~metrics f =
  let enabled = metrics || Option.is_some trace in
  if enabled then Qsens_obs.Obs.start ();
  match f () with
  | v ->
      if enabled then begin
        Qsens_obs.Obs.stop ();
        Option.iter Qsens_obs.Obs.write_trace trace;
        if metrics then begin
          print_newline ();
          Qsens_report.Metrics.print ()
        end
      end;
      v
  | exception e ->
      if enabled then Qsens_obs.Obs.stop ();
      raise e

let lookup_query sf name =
  match Qsens_tpch.Queries.find ~sf name with
  | q -> q
  | exception Not_found ->
      Printf.eprintf "unknown query %s (expected Q1 .. Q22)\n" name;
      exit 2

let deltas_upto delta_max =
  List.filter (fun d -> d <= delta_max *. 1.0001) Worst_case.default_deltas

(* ------------------------------------------------------------------ *)

let explain_cmd =
  let run sf policy name =
    let query = lookup_query sf name in
    let schema = Qsens_tpch.Spec.schema ~sf in
    let env = Qsens_plan.Env.make ~schema ~policy () in
    let costs = Qsens_cost.Defaults.base_costs env.Qsens_plan.Env.space in
    let r = Qsens_optimizer.Optimizer.optimize env query ~costs in
    Format.printf "%a@." Qsens_plan.Query.pp query;
    Format.printf "estimated optimal plan (total cost %.6g):@.%a@."
      r.total_cost Qsens_plan.Node.pp_explain r.plan;
    Format.printf "resource usage vector:@.%a@."
      (Qsens_cost.Space.pp_vec env.Qsens_plan.Env.space)
      r.plan.Qsens_plan.Node.usage
  in
  let doc = "Show the plan chosen at the estimated (default) costs." in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ sf_arg $ policy_arg $ query_arg)

let worst_case_cmd =
  let run sf policy name delta seed domains faults retries trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let query = lookup_query sf name in
    let schema = Qsens_tpch.Spec.schema ~sf in
    let s = Experiment.setup ~schema ~policy query in
    let faults = injector_of_spec faults in
    let retry = retry_for ~faults ~retries in
    let r =
      try
        with_domains domains (fun pool ->
            Experiment.run ~deltas:(deltas_upto delta) ~seed ?faults ~retry
              ?pool s)
      with Experiment.Narrow_estimation_failed { signature; error } ->
        Printf.eprintf "narrow probing failed%s: %s\n"
          (match signature with
          | Some sg -> Printf.sprintf " for plan %s" sg
          | None -> "")
          (Qsens_faults.Fault.error_to_string error);
        exit 1
    in
    Printf.printf
      "query %s, layout %s: %d active cost parameters, %d candidate plans%s\n"
      r.query_name
      (Qsens_catalog.Layout.policy_name r.policy)
      r.active_dim
      (List.length r.candidates.plans)
      (if r.candidates.verified_complete then " (verified complete)"
       else " (not verified complete)");
    Printf.printf "evaluation path: %s\n" r.path;
    let table = Qsens_report.Figure.series_table [ (name, r.curve) ] in
    Qsens_report.Table.print table;
    (match Worst_case.asymptote r.curve with
    | `Bounded c ->
        Printf.printf
          "regime: bounded — approaches constant %.4g (Theorem 2; bound %.4g)\n"
          c r.census.theorem2
    | `Quadratic s ->
        Printf.printf "regime: quadratic — gtc ~ %.3g * delta^2 (Theorem 1)\n" s);
    print_fault_summary faults
  in
  let doc =
    "Worst-case global relative cost curve for one query.  With --faults \
     the discovery probes run through the fault-injected narrow \
     interface with retries."
  in
  Cmd.v (Cmd.info "worst-case" ~doc)
    Term.(
      const run $ sf_arg $ policy_arg $ query_arg $ delta_arg $ seed_arg
      $ domains_arg $ faults_arg $ retries_arg $ trace_arg $ metrics_arg)

let candidates_cmd =
  let run sf policy name delta seed trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let query = lookup_query sf name in
    let schema = Qsens_tpch.Spec.schema ~sf in
    let s = Experiment.setup ~schema ~policy query in
    let box =
      Qsens_geom.Box.around
        (Qsens_linalg.Vec.make (Projection.active_dim s.proj) 1.)
        ~delta
    in
    let oracle = Experiment.white_box_oracle s in
    let c = Candidates.discover ~seed oracle ~box in
    Printf.printf "%d candidate optimal plans (%d probes, %s):\n"
      (List.length c.plans) c.probes
      (if c.verified_complete then "verified complete" else "not verified");
    let names = Array.map (fun i -> (Qsens_cost.Groups.names s.groups).(i))
        (Projection.active s.proj) in
    List.iter
      (fun (p : Candidates.plan) ->
        Printf.printf "%s %s\n"
          (if p.signature = c.initial.signature then "*" else " ")
          p.signature;
        Array.iteri
          (fun i name ->
            if p.eff.(i) <> 0. then
              Printf.printf "      %-28s %.6g\n" name p.eff.(i))
          names)
      c.plans;
    let census = Experiment.census_of s c.plans in
    Printf.printf
      "census: %d pairs, %d complementary, %d near-complementary (>10x), \
       max element ratio %.4g\n"
      census.pairs census.complementary_pairs census.near_pairs
      census.max_element_ratio;
    List.iter
      (fun (k, n) ->
        Printf.printf "  %-12s %d pair(s)\n" (Complementary.kind_name k) n)
      census.by_kind;
    if Float.is_finite census.theorem2 then
      Printf.printf
        "no complementary pairs: Theorem 2 bounds the error by %.4g\n"
        census.theorem2;
    (* Switchover margins from the initial plan. *)
    let plan_vecs =
      Array.of_list (List.map (fun (p : Candidates.plan) -> p.eff) c.plans)
    in
    let current =
      let rec find i = function
        | [] -> 0
        | (p : Candidates.plan) :: rest ->
            if p.signature = c.initial.signature then i else find (i + 1) rest
      in
      find 0 c.plans
    in
    (match Margin.nearest ~plans:plan_vecs ~current () with
    | Some b ->
        Printf.printf
          "nearest switchover: plan %s takes over once costs drift by %.3gx\n"
          (List.nth c.plans b.Margin.competitor).Candidates.signature
          b.Margin.delta
    | None -> Printf.printf "no competitor can overtake the initial plan\n")
  in
  let doc = "Discover candidate optimal plans and classify them." in
  Cmd.v (Cmd.info "candidates" ~doc)
    Term.(
      const run $ sf_arg $ policy_arg $ query_arg $ delta_arg $ seed_arg
      $ trace_arg $ metrics_arg)

let figure_cmd =
  let number_arg =
    let doc = "Figure number: 5, 6 or 7." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc)
  in
  let run sf number delta seed domains trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let policy =
      match number with
      | 5 -> Qsens_catalog.Layout.Same_device
      | 6 -> Qsens_catalog.Layout.Per_table_and_index_devices
      | 7 -> Qsens_catalog.Layout.Per_table_devices
      | n ->
          Printf.eprintf "no figure %d (expected 5, 6 or 7)\n" n;
          exit 2
    in
    let schema = Qsens_tpch.Spec.schema ~sf in
    let series =
      with_domains domains (fun pool ->
          List.map
            (fun query ->
              let s = Experiment.setup ~schema ~policy query in
              let r =
                Experiment.run ~deltas:(deltas_upto delta) ~seed
                  ~max_probes:1500 ?pool s
              in
              Printf.eprintf "%s done (%d plans)\n%!" r.query_name
                (List.length r.candidates.plans);
              (r.query_name, r.curve))
            (Qsens_tpch.Queries.all ~sf))
    in
    Printf.printf "Figure %d: worst-case GTC, layout %s\n" number
      (Qsens_catalog.Layout.policy_name policy);
    Qsens_report.Table.print (Qsens_report.Figure.series_table series);
    print_newline ();
    print_string (Qsens_report.Figure.ascii_plot series);
    print_newline ();
    Qsens_report.Table.print (Qsens_report.Figure.asymptote_summary series)
  in
  let doc = "Regenerate a full figure (all 22 queries; takes minutes)." in
  Cmd.v (Cmd.info "figure" ~doc)
    Term.(
      const run $ sf_arg $ number_arg $ delta_arg $ seed_arg $ domains_arg
      $ trace_arg $ metrics_arg)

let lsq_cmd =
  let run sf policy name delta seed faults retries trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let open Qsens_faults in
    let query = lookup_query sf name in
    let schema = Qsens_tpch.Spec.schema ~sf in
    let s = Experiment.setup ~schema ~policy query in
    let m = Projection.active_dim s.proj in
    let box = Qsens_geom.Box.around (Qsens_linalg.Vec.make m 1.) ~delta in
    let faults = injector_of_spec faults in
    let retry = retry_for ~faults ~retries in
    let robust = Option.is_some faults in
    let _, narrow = Experiment.narrow_oracle ~seed ?faults ~retry s ~box in
    let ones = Qsens_linalg.Vec.make m 1. in
    let explained =
      Fault.Retry.run retry ~seed ~site:"cli.explain" (fun ~attempt:_ ->
          Qsens_optimizer.Narrow.explain narrow
            ~costs:(Experiment.expand_theta s ones))
    in
    match explained with
    | Error e ->
        Printf.printf "explain failed: %s\n" (Fault.error_to_string e);
        print_fault_summary faults;
        exit 1
    | Ok (signature, _) -> (
        match
          Probe.estimate_usage ~seed ~retry ~robust ~narrow
            ~expand:(Experiment.expand_theta s) ~signature ~box ()
        with
        | Error e ->
            Printf.printf "estimation failed: %s\n" (Fault.error_to_string e);
            print_fault_summary faults;
            exit 1
        | Ok est ->
            Printf.printf
              "plan %s\nestimated effective usage from %d cost observations \
               (max fitting residual %.3g%%%s):\n"
              signature est.samples (100. *. est.residual)
              (if est.dropped > 0 then
                 Printf.sprintf ", %d probe(s) dropped" est.dropped
               else "");
            let names =
              Array.map (fun i -> (Qsens_cost.Groups.names s.groups).(i))
                (Projection.active s.proj)
            in
            Array.iteri
              (fun i name -> Printf.printf "  %-28s %.6g\n" name est.usage.(i))
              names;
            (match
               Probe.validate ~retry ~narrow
                 ~expand:(Experiment.expand_theta s) ~signature ~box est
             with
            | Ok err ->
                Printf.printf
                  "validation: max cost-prediction discrepancy %.4g%% \
                   (paper: <1%%)\n"
                  (100. *. err)
            | Error e ->
                Printf.printf "validation failed: %s\n"
                  (Fault.error_to_string e));
            print_fault_summary faults)
  in
  let doc =
    "Recover a plan's usage vector through the narrow interface \
     (least squares, Section 6.1.1)."
  in
  Cmd.v (Cmd.info "lsq" ~doc)
    Term.(
      const run $ sf_arg $ policy_arg $ query_arg $ delta_arg $ seed_arg
      $ faults_arg $ retries_arg $ trace_arg $ metrics_arg)

let diagram_cmd =
  let dims_arg =
    let doc =
      "Two active cost dimensions to sweep, as a comma-separated pair of \
       group names (e.g. dev:tbl:lineitem,dev:idx:lineitem) or indices."
    in
    Arg.(value & opt (some string) None & info [ "dims" ] ~docv:"X,Y" ~doc)
  in
  let run sf policy name delta dims =
    let query = lookup_query sf name in
    let schema = Qsens_tpch.Spec.schema ~sf in
    let s = Experiment.setup ~schema ~policy query in
    let names = Qsens_cost.Groups.names s.groups in
    let active = Projection.active s.proj in
    let m = Projection.active_dim s.proj in
    let resolve spec =
      match int_of_string_opt spec with
      | Some i when i >= 0 && i < m -> i
      | Some _ ->
          Printf.eprintf "dimension index out of range (0..%d)\n" (m - 1);
          exit 2
      | None -> (
          let rec find k =
            if k >= m then None
            else if names.(active.(k)) = spec then Some k
            else find (k + 1)
          in
          match find 0 with
          | Some k -> k
          | None ->
              Printf.eprintf "unknown dimension %s; available:\n" spec;
              for k = 0 to m - 1 do
                Printf.eprintf "  %d: %s\n" k names.(active.(k))
              done;
              exit 2)
    in
    let dx, dy =
      match dims with
      | Some spec -> (
          match String.split_on_char ',' spec with
          | [ a; b ] -> (resolve a, resolve b)
          | _ ->
              Printf.eprintf "expected --dims X,Y\n";
              exit 2)
      | None -> (0, if m > 1 then 1 else 0)
    in
    let oracle = Experiment.white_box_oracle s in
    let d =
      Plan_diagram.compute ~grid:28 ~oracle ~plans:[] ~dim_x:dx ~dim_y:dy
        ~delta ()
    in
    Printf.printf "x: %s, y: %s\n" names.(active.(dx)) names.(active.(dy));
    print_string (Plan_diagram.render d);
    Printf.printf "convexity violations: %d\n"
      (Plan_diagram.convexity_violations d)
  in
  let doc =
    "Plot the regions of influence over a 2-D slice of the cost space."
  in
  Cmd.v (Cmd.info "diagram" ~doc)
    Term.(const run $ sf_arg $ policy_arg $ query_arg $ delta_arg $ dims_arg)

let sql_cmd =
  let sql_arg =
    let doc = "A select-project-join SQL block over the TPC-H schema." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let run sf policy sql =
    let schema = Qsens_tpch.Spec.schema ~sf in
    let query =
      try Qsens_sql.Binder.parse_and_bind schema ~name:"adhoc" sql with
      | Qsens_sql.Parser.Error msg
      | Qsens_sql.Binder.Error msg
      | Qsens_sql.Lexer.Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
    in
    Format.printf "%a@." Qsens_plan.Query.pp query;
    let env = Qsens_plan.Env.make ~schema ~policy () in
    let costs = Qsens_cost.Defaults.base_costs env.Qsens_plan.Env.space in
    let r = Qsens_optimizer.Optimizer.optimize env query ~costs in
    Format.printf "estimated optimal plan (total cost %.6g):@.%a@."
      r.total_cost Qsens_plan.Node.pp_explain r.plan
  in
  let doc = "Parse, bind and optimize an ad-hoc SQL query." in
  Cmd.v (Cmd.info "sql" ~doc) Term.(const run $ sf_arg $ policy_arg $ sql_arg)

let profile_cmd =
  let dim_arg =
    let doc = "Cost dimension to sweep (group name or active index)." in
    Arg.(value & opt (some string) None & info [ "dim" ] ~docv:"DIM" ~doc)
  in
  let run sf policy name delta seed dim =
    let query = lookup_query sf name in
    let schema = Qsens_tpch.Spec.schema ~sf in
    let s = Experiment.setup ~schema ~policy query in
    let names = Qsens_cost.Groups.names s.groups in
    let active = Projection.active s.proj in
    let m = Projection.active_dim s.proj in
    let d =
      match dim with
      | None -> 0
      | Some spec -> (
          match int_of_string_opt spec with
          | Some i when i >= 0 && i < m -> i
          | _ -> (
              let rec find k =
                if k >= m then (
                  Printf.eprintf "unknown dimension %s; available:\n" spec;
                  for k = 0 to m - 1 do
                    Printf.eprintf "  %d: %s\n" k names.(active.(k))
                  done;
                  exit 2)
                else if names.(active.(k)) = spec then k
                else find (k + 1)
              in
              find 0))
    in
    let box =
      Qsens_geom.Box.around (Qsens_linalg.Vec.make m 1.) ~delta
    in
    let oracle = Experiment.white_box_oracle s in
    let c = Candidates.discover ~seed ~max_probes:1200 oracle ~box in
    let plans =
      Array.of_list (List.map (fun (p : Candidates.plan) -> p.eff) c.plans)
    in
    let segs =
      Envelope.compute ~plans ~dim:d ~lo:(1. /. delta) ~hi:delta
    in
    Printf.printf
      "exact optimal-plan profile along %s (others at their estimates):\n"
      names.(active.(d));
    List.iter
      (fun (seg : Envelope.segment) ->
        Printf.printf "  [%8.4g .. %8.4g]  %s\n" seg.from_theta seg.to_theta
          (List.nth c.plans seg.plan).Candidates.signature)
      segs;
    Printf.printf "%d plan change(s) across the sweep\n"
      (List.length (Envelope.breakpoints segs))
  in
  let doc =
    "Exact 1-D parametric profile: optimal-plan intervals along one cost \
     dimension."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ sf_arg $ policy_arg $ query_arg $ delta_arg $ seed_arg
          $ dim_arg)

let robust_cmd =
  let run sf policy name delta seed =
    let query = lookup_query sf name in
    let schema = Qsens_tpch.Spec.schema ~sf in
    let s = Experiment.setup ~schema ~policy query in
    let box =
      Qsens_geom.Box.around
        (Qsens_linalg.Vec.make (Projection.active_dim s.proj) 1.)
        ~delta
    in
    let oracle = Experiment.white_box_oracle s in
    let c = Candidates.discover ~seed ~max_probes:1200 oracle ~box in
    let plans =
      Array.of_list (List.map (fun (p : Candidates.plan) -> p.eff) c.plans)
    in
    let signature i = (List.nth c.plans i).Candidates.signature in
    let nominal = Robust.nominal ~plans in
    let nominal_scored =
      Robust.evaluate ~plans ~index:nominal.Robust.index ~delta
    in
    let mm = Robust.minimax ~plans ~delta in
    Printf.printf
      "nominal plan   %s\n  worst-case GTC over +/-%gx errors: %.4g\n"
      (signature nominal.Robust.index) delta nominal_scored.Robust.worst_gtc;
    Printf.printf
      "minimax plan   %s\n  worst-case GTC: %.4g, nominal penalty %.3fx\n"
      (signature mm.Robust.index) mm.Robust.worst_gtc mm.Robust.nominal_penalty;
    if mm.Robust.index = nominal.Robust.index then
      print_endline "the nominal optimum is already the robust choice"
    else
      Printf.printf
        "recommendation: if cost estimates can be off by %gx, the minimax \
         plan\ntrades %.1f%% at the estimates for a %.3gx better worst \
         case.\n"
        delta
        (100. *. (mm.Robust.nominal_penalty -. 1.))
        (nominal_scored.Robust.worst_gtc /. mm.Robust.worst_gtc)
  in
  let doc = "Recommend a plan that is robust to cost-estimate errors." in
  Cmd.v (Cmd.info "robust" ~doc)
    Term.(const run $ sf_arg $ policy_arg $ query_arg $ delta_arg $ seed_arg)

let select_cmd =
  let run sf policy name delta seed domains =
    with_domains domains (fun pool ->
        let query = lookup_query sf name in
        let schema = Qsens_tpch.Spec.schema ~sf in
        let s = Experiment.setup ~schema ~policy query in
        let box =
          Qsens_geom.Box.around
            (Qsens_linalg.Vec.make (Projection.active_dim s.proj) 1.)
            ~delta
        in
        let oracle = Experiment.white_box_oracle s in
        let c = Candidates.discover ~seed ~max_probes:1200 ?pool oracle ~box in
        let plans =
          Array.of_list
            (List.map (fun (p : Candidates.plan) -> p.eff) c.plans)
        in
        let signatures =
          Array.of_list
            (List.map (fun (p : Candidates.plan) -> p.signature) c.plans)
        in
        let points, path =
          Select.curve ~deltas:(deltas_upto delta) ?pool ~plans ()
        in
        Printf.printf
          "%d candidate plans over +/-%gx cost errors (%s); evaluation \
           path: %s\n\n"
          (Array.length plans) delta
          (Qsens_catalog.Layout.policy_name policy)
          path;
        Qsens_report.Table.print
          (Qsens_report.Figure.selection_table ~signatures points);
        print_newline ();
        print_string
          (Qsens_report.Figure.ascii_plot
             (Qsens_report.Figure.selection_series points));
        match List.rev points with
        | [] -> ()
        | (last : Select.point) :: _ ->
            let name i = signatures.(i) in
            if last.Select.minimax = last.Select.classic then
              Printf.printf
                "\nat delta = %g the classic choice %s is already minimax-\
                 optimal.\n"
                last.Select.delta
                (name last.Select.classic)
            else
              Printf.printf
                "\nat delta = %g: classic picks %s (worst-case GTC %.4g), \
                 minimax picks %s (%.4g) — a %.3gx better guarantee.\n"
                last.Select.delta
                (name last.Select.classic)
                last.Select.regret.(last.Select.classic)
                (name last.Select.minimax)
                last.Select.regret.(last.Select.minimax)
                (last.Select.regret.(last.Select.classic)
                /. last.Select.regret.(last.Select.minimax)))
  in
  let doc =
    "Compare plan-selection rules over the error box: classic (optimal at \
     the estimates), least expected cost under the uniform box prior, and \
     minimax worst-case regret (PARQO-style)."
  in
  Cmd.v (Cmd.info "select" ~doc)
    Term.(
      const run $ sf_arg $ policy_arg $ query_arg $ delta_arg $ seed_arg
      $ domains_arg)

let params_cmd =
  let run () =
    let table = Qsens_report.Table.make ~header:[ "Parameter Name"; "Value" ] in
    List.iter
      (fun (k, v) -> Qsens_report.Table.add_row table [ k; v ])
      Qsens_cost.Defaults.system_parameters;
    Qsens_report.Table.print table
  in
  let doc = "Print the optimizer configuration table (Section 7.3)." in
  Cmd.v (Cmd.info "params" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* The sensitivity service (DESIGN.md section 14). *)

module Server = Qsens_server.Server
module Sjson = Qsens_server.Json

let socket_doc = "Unix-domain socket path for the analysis service."

let serve_cmd =
  let run socket budget mc_samples queue_limit cache_mb snapshot seed
      faults_spec domains =
    let faults = injector_of_spec faults_spec in
    let config =
      {
        Server.default_budget = budget;
        mc_samples;
        queue_limit;
        cache_bytes = cache_mb * 1024 * 1024;
        snapshot_path = snapshot;
        seed;
      }
    in
    with_domains domains (fun pool ->
        let t = Server.create ~config ?pool ?faults () in
        match socket with
        | Some path -> Server.run_socket t ~path
        | None -> Server.run_stdio t stdin stdout)
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:socket_doc)
  in
  let budget_arg =
    let doc =
      "Default logical node budget per analysis request (requests may \
       carry their own)."
    in
    Arg.(
      value
      & opt int Limits.default_bnb_node_budget
      & info [ "budget" ] ~docv:"NODES" ~doc)
  in
  let mc_arg =
    let doc = "Monte-Carlo samples per curve point on the estimate tier." in
    Arg.(value & opt int 4096 & info [ "mc-samples" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Batch queue bound; requests beyond it are shed." in
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc = "Byte budget per memoization cache, in MiB." in
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~docv:"MB" ~doc)
  in
  let snapshot_arg =
    let doc =
      "Cache snapshot file: loaded on start, written on shutdown and by \
       the snapshot op."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Serve sensitivity analyses over line-delimited JSON (stdio, or a \
     Unix socket with --socket)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ budget_arg $ mc_arg $ queue_arg $ cache_arg
      $ snapshot_arg $ seed_arg $ faults_arg $ domains_arg)

let client_cmd =
  let connect path =
    let rec attempt n =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> fd
      | exception
          Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
        when n > 0 ->
          (match Unix.close fd with
          | () -> ()
          | exception Unix.Unix_error (_, _, _) -> ());
          Unix.sleepf 0.05;
          attempt (n - 1)
    in
    attempt 200
  in
  (* Mirrors the server's delta defaulting so --check recomputes exactly
     the grid the request asked for. *)
  let deltas_of_req req =
    match Option.bind (Sjson.member "deltas" req) Sjson.to_list with
    | Some items -> List.filter_map Sjson.to_float items
    | None -> (
        match Option.bind (Sjson.member "delta" req) Sjson.to_float with
        | Some d -> deltas_upto d
        | None -> Worst_case.default_deltas)
  in
  let check_response ~pool ~failures req_line resp_line =
    match (Sjson.of_string req_line, Sjson.of_string resp_line) with
    | Error _, _ | _, Error _ -> ()
    | Ok req, Ok resp ->
        let ok =
          Option.value ~default:false
            (Option.bind (Sjson.member "ok" resp) Sjson.to_bool)
        in
        let op =
          Option.value ~default:""
            (Option.bind (Sjson.member "op" resp) Sjson.to_str)
        in
        let verify ~field ~reference =
          let degraded =
            Option.value ~default:false
              (Option.bind (Sjson.member "degraded" resp) Sjson.to_bool)
          in
          let path =
            Option.value ~default:""
              (Option.bind (Sjson.member "path" resp) Sjson.to_str)
          in
          if degraded then begin
            if String.length path = 0 then begin
              incr failures;
              Printf.eprintf "check: degraded response without a path\n"
            end
            else Printf.eprintf "check: degraded via %s, annotated\n" path
          end
          else
            let query =
              Option.value ~default:""
                (Option.bind (Sjson.member "query" req) Sjson.to_str)
            in
            let layout =
              Option.value ~default:"same"
                (Option.bind (Sjson.member "layout" req) Sjson.to_str)
            in
            let sf =
              Option.value ~default:100.
                (Option.bind (Sjson.member "sf" req) Sjson.to_float)
            in
            let seed =
              Option.value ~default:42
                (Option.bind (Sjson.member "seed" req) Sjson.to_int)
            in
            let max_probes =
              Option.bind (Sjson.member "max_probes" req) Sjson.to_int
            in
            let deltas = deltas_of_req req in
            let got =
              Option.map Sjson.to_string (Sjson.member field resp)
            in
            match
              reference ~sf ~seed ?max_probes ?pool ~deltas ~query ~layout ()
            with
            | Error m ->
                incr failures;
                Printf.eprintf "check: %s/%s: reference failed: %s\n" query
                  layout m
            | Ok expect -> (
                match got with
                | Some got when String.equal got expect ->
                    Printf.eprintf
                      "check: %s %s/%s bit-identical to fresh run\n" op query
                      layout
                | Some _ ->
                    incr failures;
                    Printf.eprintf
                      "check: %s %s/%s DIVERGES from fresh computation\n" op
                      query layout
                | None ->
                    incr failures;
                    Printf.eprintf "check: %s/%s: response has no %s\n" query
                      layout field)
        in
        if ok && String.equal op "worst_case" then
          verify ~field:"points" ~reference:Qsens_server.Soak.reference_line
        else if ok && String.equal op "select" then
          verify ~field:"choices"
            ~reference:Qsens_server.Soak.select_reference_line
  in
  let run socket requests check domains =
    with_domains domains (fun pool ->
        let fd = connect socket in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let requests =
          if requests <> [] then requests
          else
            let rec slurp acc =
              match input_line stdin with
              | line -> slurp (line :: acc)
              | exception End_of_file -> List.rev acc
            in
            slurp []
        in
        let failures = ref 0 in
        List.iter
          (fun req ->
            output_string oc req;
            output_char oc '\n';
            flush oc;
            match input_line ic with
            | resp ->
                print_endline resp;
                if check then check_response ~pool ~failures req resp
            | exception End_of_file ->
                incr failures;
                Printf.eprintf "server closed the connection\n")
          requests;
        (match Unix.close fd with
        | () -> ()
        | exception Unix.Unix_error (_, _, _) -> ());
        if !failures > 0 then exit 1)
  in
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:socket_doc)
  in
  let request_arg =
    let doc =
      "A request to send, as one JSON object (repeatable, sent in \
       order).  With no requests, lines are read from stdin."
    in
    Arg.(value & opt_all string [] & info [ "r"; "request" ] ~docv:"JSON" ~doc)
  in
  let check_arg =
    let doc =
      "Verify responses: recompute every successful non-degraded \
       worst_case and select answer from scratch and require \
       bit-identity; require a path annotation on degraded answers.  \
       Exits nonzero on any divergence."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let doc = "Send requests to a running sensitivity service." in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const run $ socket_arg $ request_arg $ check_arg $ domains_arg)

let main =
  let doc =
    "Sensitivity of query optimization to storage access cost parameters"
  in
  Cmd.group
    (Cmd.info "qsens" ~version:"1.0.0" ~doc)
    [ explain_cmd; worst_case_cmd; candidates_cmd; figure_cmd; lsq_cmd;
      diagram_cmd; profile_cmd; robust_cmd; select_cmd; sql_cmd; params_cmd;
      serve_cmd; client_cmd ]

let () = exit (Cmd.eval main)
